"""Happens-before analysis over a pipeline's stage DAG.

The hazard rules need to know, for every pair of stages, whether the DAG
orders them.  This module computes the transitive closure of ``depends_on``
once (in topological order, so each stage's ancestor set is the union of
its direct dependencies' sets) and answers ordering and concurrency
queries from it.  Region-overlap helpers for fractional buffer regions
live here too, shared by the hazard and copy-consistency rules.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Tuple

from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import BufferAccess, Region, Stage


class HappensBefore:
    """Transitive ordering of a pipeline's stages."""

    def __init__(self, pipeline: Pipeline) -> None:
        self.pipeline = pipeline
        self._ancestors: Dict[str, FrozenSet[str]] = {}
        for stage in pipeline.topological_order():
            closure = set(stage.depends_on)
            for dep in stage.depends_on:
                closure.update(self._ancestors[dep])
            self._ancestors[stage.name] = frozenset(closure)

    def ancestors(self, stage: str) -> FrozenSet[str]:
        """Names of every stage that must complete before ``stage`` starts."""
        return self._ancestors[stage]

    def ordered(self, a: str, b: str) -> bool:
        """True when the DAG orders ``a`` and ``b`` (either direction)."""
        return a in self._ancestors[b] or b in self._ancestors[a]

    def concurrent(self, a: str, b: str) -> bool:
        return a != b and not self.ordered(a, b)

    def concurrent_pairs(self) -> Iterator[Tuple[Stage, Stage]]:
        """Every unordered pair of distinct stages, in insertion order.

        The first element of each pair is the stage that appears earlier in
        the pipeline's insertion order — the author's intended sequential
        order — which the hazard rules use to classify read/write conflicts
        as RAW versus WAR.
        """
        stages = self.pipeline.stages
        for i, first in enumerate(stages):
            for second in stages[i + 1:]:
                if self.concurrent(first.name, second.name):
                    yield first, second


def regions_overlap(a: Region, b: Region) -> bool:
    """Whether two fractional regions share any sub-range."""
    return a.start < b.end and b.start < a.end


def accesses_overlap(a: BufferAccess, b: BufferAccess) -> bool:
    """Whether two accesses of the *same* buffer can touch common bytes."""
    return regions_overlap(a.region, b.region)
