"""Set-associative, write-back, write-allocate LRU cache model.

Operates on block ids (one block = one cache line).  The access loop is the
simulator's hot path, so it is written against plain Python lists/sets with
locals bound outside the loop; streams arrive as numpy arrays and results
return as numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

import numpy as np

from repro.config.components import CacheConfig
from repro.trace.stream import AccessStream


@dataclass
class CacheStats:
    """Cumulative counters for one cache instance."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssocCache:
    """One cache level.

    On a hit the line moves to MRU position; on a miss the line is filled
    (producing a read request below) and the LRU line of the set is evicted,
    producing a writeback below when dirty.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        # Per-set LRU stacks: index 0 is LRU, last is MRU.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self._dirty: Set[int] = set()
        self._resident: Set[int] = set()
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------------

    def __contains__(self, block: int) -> bool:
        return block in self._resident

    @property
    def resident_blocks(self) -> Set[int]:
        """Live view of resident block ids (do not mutate)."""
        return self._resident

    @property
    def occupancy(self) -> int:
        return len(self._resident)

    def is_dirty(self, block: int) -> bool:
        return block in self._dirty

    # -- the hot path ------------------------------------------------------------

    def access_stream(self, stream: AccessStream) -> AccessStream:
        """Run a stream through the cache; return the downstream stream.

        The downstream stream contains, in occurrence order, a read for every
        miss fill and a write for every dirty eviction.
        """
        n = len(stream)
        if not n:
            return AccessStream.empty()
        blocks = stream.blocks.tolist()
        writes = stream.is_write.tolist()
        set_of = (stream.blocks % self.num_sets).tolist()

        sets = self._sets
        dirty = self._dirty
        resident = self._resident
        assoc = self.assoc
        out_blocks: List[int] = []
        out_writes: List[bool] = []
        hits = 0

        for i in range(n):
            block = blocks[i]
            lru = sets[set_of[i]]
            if block in resident:
                # Hit: move to MRU.
                lru.remove(block)
                lru.append(block)
                hits += 1
            else:
                # Miss: fill from below.
                out_blocks.append(block)
                out_writes.append(False)
                lru.append(block)
                resident.add(block)
                if len(lru) > assoc:
                    victim = lru.pop(0)
                    resident.discard(victim)
                    if victim in dirty:
                        dirty.discard(victim)
                        out_blocks.append(victim)
                        out_writes.append(True)
            if writes[i]:
                dirty.add(block)

        self.stats.accesses += n
        self.stats.hits += hits
        self.stats.misses += n - hits
        self.stats.writebacks += sum(out_writes)
        return AccessStream(
            np.asarray(out_blocks, dtype=np.int64),
            np.asarray(out_writes, dtype=bool),
        )

    # -- maintenance ----------------------------------------------------------

    def extract(self, block: int) -> bool:
        """Silently remove a line (ownership migrated to a peer cache).

        Returns True if the line was present.  No writeback is generated:
        the peer now owns the (possibly dirty) data on chip.
        """
        if block not in self._resident:
            return False
        self._sets[block % self.num_sets].remove(block)
        self._resident.discard(block)
        self._dirty.discard(block)
        return True

    def invalidate(self, blocks: Iterable[int]) -> int:
        """Drop any of the given lines without writeback (DMA overwrite).

        Returns the number of lines dropped.
        """
        dropped = 0
        for block in blocks:
            if block in self._resident:
                self._sets[block % self.num_sets].remove(block)
                self._resident.discard(block)
                self._dirty.discard(block)
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def flush(self, blocks: Iterable[int]) -> List[int]:
        """Write back and drop any dirty copies of the given lines.

        Returns the block ids written back (for off-chip accounting); clean
        copies are dropped silently.
        """
        written: List[int] = []
        for block in blocks:
            if block in self._resident:
                if block in self._dirty:
                    written.append(block)
                self._sets[block % self.num_sets].remove(block)
                self._resident.discard(block)
                self._dirty.discard(block)
        self.stats.writebacks += len(written)
        return written

    def drain(self) -> List[int]:
        """Write back every dirty line and empty the cache (end of ROI)."""
        written = sorted(self._dirty)
        self._sets = [[] for _ in range(self.num_sets)]
        self._dirty = set()
        self._resident = set()
        self.stats.writebacks += len(written)
        return written

    # -- state snapshot (stage memoization) ------------------------------------

    def state_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical state snapshot for :mod:`repro.sim.memo`.

        Returns (per-set line counts, block ids concatenated in set-index
        order each LRU->MRU, matching dirty flags).  The encoding is
        implementation-independent: whenever this model and
        :class:`repro.sim.fastcache.FastSetAssocCache` are in the same
        logical state they produce byte-identical snapshots, so memoized
        stage entries are shared between the two.
        """
        lengths = np.fromiter(
            (len(lru) for lru in self._sets), np.int32, count=self.num_sets
        )
        total = int(lengths.sum())
        blocks = np.fromiter(
            (block for lru in self._sets for block in lru), np.int64, count=total
        )
        dirty_set = self._dirty
        dirty = np.fromiter(
            (block in dirty_set for lru in self._sets for block in lru),
            bool,
            count=total,
        )
        return lengths, blocks, dirty

    def restore_state(
        self, state: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Adopt a :meth:`state_arrays` snapshot (stats are untouched)."""
        lengths, blocks, dirty = state
        block_list = blocks.tolist()
        sets: List[List[int]] = []
        pos = 0
        for count in lengths.tolist():
            sets.append(block_list[pos : pos + count])
            pos += count
        self._sets = sets
        self._resident = set(block_list)
        self._dirty = set(blocks[dirty].tolist())
