"""Persistent, content-addressed cache of simulation results.

Every figure of Sections IV/V is derived from the same 46x2 sweep, so the
sweep harness (:mod:`repro.experiments.parallel`) stores each finished
:class:`~repro.sim.results.SimResult` on disk keyed by a stable hash of
everything that determines its value:

* the :class:`~repro.workloads.spec.BenchmarkSpec` (all metadata fields;
  the ``build`` callable is excluded — pipeline-builder changes are covered
  by the engine version tag),
* the sweep version string (``copy`` / ``limited-copy``),
* the full :class:`~repro.config.system.SystemConfig`,
* the full :class:`~repro.sim.engine.SimOptions` (including ``scale`` and
  ``seed`` — two sweeps at different scales never collide) *except*
  ``engine_impl`` and ``stage_memo``, whose settings select between
  bit-identical execution strategies and therefore share entries, and
* :data:`repro.sim.engine.ENGINE_VERSION`, so bumping the tag invalidates
  every archived result at once.

Keys are the SHA-256 of the canonical JSON (sorted keys, no whitespace) of
those inputs, which makes them independent of dict insertion order, process
hash randomization, and restarts.  Entries round-trip through the lossless
``repro.sim_result/v2-full`` schema of :mod:`repro.sim.serialize` and are
gzip-compressed; writes are atomic (temp file + ``os.replace``), so
concurrent sweep workers sharing one cache directory cannot corrupt it.
The v2-full schema is forward-compatible with optional result fields
(``violations`` from the invariant monitor): entries written before a
field existed still load, defaulting it — stale *semantics* are instead
caught by the :data:`~repro.sim.engine.ENGINE_VERSION` tag in the key.

The default location is ``~/.cache/repro-sweeps``, overridable with the
``REPRO_CACHE_DIR`` environment variable or an explicit ``cache_dir``.
"""

from __future__ import annotations

import dataclasses
import enum
import gzip
import hashlib
import json
import os
import tempfile
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple, Union

from repro.config.system import SystemConfig
from repro.sim.engine import ENGINE_VERSION, SimOptions
from repro.sim.results import SimResult
from repro.sim.serialize import result_from_dict, result_to_full_dict
from repro.workloads.spec import BenchmarkSpec

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Schema tag of the on-disk entry envelope.
CACHE_SCHEMA = "repro.sweep_cache/v1"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-sweeps``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-sweeps"


def canonical(value: Any) -> Any:
    """Reduce configs to JSON-able data with a stable, order-free form.

    Dataclasses become field-name dicts, enums their values, tuples lists;
    dict keys are stringified so the canonical JSON dump (sorted keys) is
    insensitive to insertion order.  Unsupported types raise ``TypeError``
    rather than hashing something unstable like a ``repr`` with object ids.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return canonical(value.value)
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot canonicalize {type(value).__name__} for cache keying")


def spec_fingerprint(spec: BenchmarkSpec) -> Dict[str, Any]:
    """Hashable view of a benchmark spec (every field but ``build``)."""
    return {
        f.name: canonical(getattr(spec, f.name))
        for f in dataclasses.fields(spec)
        if f.name != "build"
    }


def cache_key(
    spec: BenchmarkSpec,
    version: str,
    system: SystemConfig,
    options: SimOptions,
    engine_version: str = ENGINE_VERSION,
) -> str:
    """Stable SHA-256 key of one (benchmark, version, system, options) run."""
    options_view = canonical(options)
    # ``engine_impl`` selects between bit-identical implementations and
    # ``stage_memo`` between bit-identical execution strategies (the
    # differential suites in tests/test_engine_equivalence.py and
    # tests/test_stage_memo.py enforce this), so both are deliberately
    # excluded from the key: reference/fast and memo-on/off runs share
    # cache entries, and keys match those written before the options
    # existed.  tests/test_resultcache.py pins this sharing.
    options_view.pop("engine_impl", None)
    options_view.pop("stage_memo", None)
    payload = {
        "schema": CACHE_SCHEMA,
        "engine": engine_version,
        "benchmark": spec_fingerprint(spec),
        "version": version,
        "system": canonical(system),
        "options": options_view,
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """A stored result plus the wall time its simulation originally took.

    ``sim_wall_s`` lets sweep metrics estimate the serial time a cache hit
    saved without re-running anything.
    """

    result: SimResult
    sim_wall_s: float


def decode_entry_bytes(key: str, data: bytes) -> Optional[CacheEntry]:
    """Parse raw on-disk entry bytes (the gzip-JSON envelope) for ``key``.

    This is how cache entries travel between machines: a remote worker
    ships the exact bytes it stored, and the coordinator validates them
    here before :meth:`ResultCache.absorb` installs them verbatim.
    Anything torn, foreign, or mis-keyed returns ``None``.
    """
    try:
        payload = json.loads(gzip.decompress(data).decode("utf-8"))
    except (OSError, EOFError, zlib.error, UnicodeDecodeError, ValueError):
        return None
    try:
        if payload.get("schema") != CACHE_SCHEMA or payload.get("key") != key:
            return None
        return CacheEntry(
            result=result_from_dict(payload["result"]),
            sim_wall_s=float(payload.get("sim_wall_s", 0.0)),
        )
    except (ValueError, KeyError, TypeError, AttributeError):
        return None


class _Flight:
    """Refcounted per-key lock slot of the single-flight registry."""

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


#: Process-wide single-flight registry keyed by (cache root, entry key).
#: Slots are refcounted and dropped when the last holder releases, so a
#: long-running server's lock table stays bounded by its concurrency, not
#: by the number of keys it has ever served.
_FLIGHT_GUARD = threading.Lock()
_FLIGHTS: Dict[Tuple[str, str], _Flight] = {}


class ResultCache:
    """Filesystem-backed result store; one gzip-JSON file per key.

    Concurrency: entries are written atomically (temp file +
    ``os.replace``) so readers can never observe torn data, and multiple
    threads/processes may store the same key concurrently (last atomic
    replace wins — both wrote the same bytes).  What atomicity alone does
    not prevent is *duplicate computation*: two clients missing on the
    same key both simulate.  :meth:`get_or_compute` closes that gap with
    a process-local single-flight lock per key — the first caller
    computes and stores while the rest block, then load the stored entry
    (tests/test_resultcache_concurrency.py pins both properties).
    """

    def __init__(self, root: Union[None, str, Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> Path:
        # Two-level fan-out keeps directories small for big sweeps.
        return self.root / key[:2] / f"{key}.json.gz"

    @contextmanager
    def lock(self, key: str) -> Iterator[None]:
        """Serialize the enclosed block against same-key blocks in this
        process (other cache roots and other keys are unaffected)."""
        slot_key = (str(self.root), key)
        with _FLIGHT_GUARD:
            flight = _FLIGHTS.get(slot_key)
            if flight is None:
                flight = _FLIGHTS[slot_key] = _Flight()
            flight.refs += 1
        try:
            with flight.lock:
                yield
        finally:
            with _FLIGHT_GUARD:
                flight.refs -= 1
                if flight.refs == 0 and _FLIGHTS.get(slot_key) is flight:
                    del _FLIGHTS[slot_key]

    def get_or_compute(
        self, key: str, compute: Callable[[], SimResult]
    ) -> Tuple[CacheEntry, bool]:
        """Load ``key`` or compute-and-store it, single-flight per process.

        Returns ``(entry, computed)`` where ``computed`` is True when
        *this* call ran ``compute``.  Concurrent same-key callers block on
        the per-key lock and then load the freshly stored entry, so N
        racing clients cost one computation, not N.
        """
        entry = self.load(key)
        if entry is not None:
            return entry, False
        with self.lock(key):
            entry = self.load(key)
            if entry is not None:
                return entry, False
            start = time.perf_counter()
            result = compute()
            wall_s = time.perf_counter() - start
            self.store(key, result, sim_wall_s=wall_s)
            return CacheEntry(result=result, sim_wall_s=wall_s), True

    def load(self, key: str) -> Optional[CacheEntry]:
        """Return the stored entry, or None on miss or unreadable file.

        Confirmed-corrupt files (bad gzip stream, truncated data, invalid
        JSON, foreign schema) are treated as misses and removed, so a
        damaged cache degrades to re-simulation, never to an error.
        Transient I/O failures (``EACCES``, disk hiccups) are misses too,
        but the entry is *kept* — deleting a healthy file because of a
        momentary read error would throw away a finished simulation.
        """
        path = self.path_for(key)
        try:
            with gzip.open(path, "rt", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (
            gzip.BadGzipFile,
            EOFError,
            zlib.error,
            UnicodeDecodeError,
            ValueError,  # includes json.JSONDecodeError
        ):
            self._discard(path)
            return None
        except OSError:
            return None
        try:
            if payload.get("schema") != CACHE_SCHEMA or payload.get("key") != key:
                raise ValueError("stale or foreign cache entry")
            return CacheEntry(
                result=result_from_dict(payload["result"]),
                sim_wall_s=float(payload.get("sim_wall_s", 0.0)),
            )
        except (ValueError, KeyError, TypeError, AttributeError):
            self._discard(path)
            return None

    @staticmethod
    def _discard(path: Path) -> None:
        """Best-effort removal of a confirmed-corrupt entry."""
        try:
            path.unlink()
        except OSError:
            pass

    def store(self, key: str, result: SimResult, sim_wall_s: float = 0.0) -> Path:
        """Atomically persist one result under ``key``; returns its path."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "engine": ENGINE_VERSION,
            "sim_wall_s": sim_wall_s,
            "result": result_to_full_dict(result),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                # Level 1: the log arrays compress ~4x either way, and cache
                # writes must not dominate small-scale sweeps.  Encode with
                # dumps + one write: json.dump always takes the interpreted
                # iterencode path (one tiny text-wrapper write per token —
                # profiled at >3x the cost of the simulation itself on a
                # cold 46x2 sweep), while dumps uses the C encoder.  The
                # emitted bytes are identical.
                with gzip.open(raw, "wt", encoding="utf-8", compresslevel=1) as handle:
                    handle.write(json.dumps(payload, separators=(",", ":")))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def absorb(self, key: str, data: bytes) -> Optional[CacheEntry]:
        """Adopt entry bytes another cache produced (warm-cache sync).

        Remote sweep workers return the content-addressed bytes they
        stored locally; installing them verbatim costs one validating
        decode and one atomic write — no re-simulation, no re-encode.
        Returns the decoded entry, or ``None`` (and installs nothing)
        when the bytes are damaged or keyed differently.
        """
        entry = decode_entry_bytes(key, data)
        if entry is None:
            return None
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as raw:
                raw.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return entry

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> Iterator[Path]:
        # A concurrent sweep (or ``clear``) may remove entries and fan-out
        # directories while this iterator walks them; vanished paths are
        # simply skipped rather than crashing the listing.
        if not self.root.is_dir():
            return
        try:
            subdirs = sorted(p for p in self.root.iterdir() if p.is_dir())
        except OSError:
            return
        for subdir in subdirs:
            try:
                names = sorted(subdir.glob("*.json.gz"))
            except OSError:
                continue
            yield from names

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass  # unlinked between listing and stat
        return total

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
