"""Simulation results: schedules, activity timelines, and memory logs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.pipeline.stage import StageKind
from repro.sim.hierarchy import Component
from repro.sim.timing import StageTiming


@dataclass(frozen=True)
class Interval:
    """A half-open busy interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} before start {self.start}")

    @property
    def length(self) -> float:
        return self.end - self.start


def merge_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Coalesce overlapping/adjacent intervals."""
    ordered = sorted(intervals, key=lambda iv: (iv.start, iv.end))
    merged: List[Interval] = []
    for interval in ordered:
        if merged and interval.start <= merged[-1].end:
            if interval.end > merged[-1].end:
                merged[-1] = Interval(merged[-1].start, interval.end)
        else:
            merged.append(interval)
    return merged


def total_time(intervals: Sequence[Interval]) -> float:
    return sum(iv.length for iv in merge_intervals(intervals))


@dataclass(frozen=True)
class StageRecord:
    """One executed stage."""

    name: str
    logical: str
    kind: StageKind
    component: Component
    ordinal: int
    start_s: float
    end_s: float
    timing: StageTiming
    requests: int
    offchip_reads: int
    offchip_writes: int
    onchip_transfers: int
    faults: int
    flops: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def offchip_accesses(self) -> int:
        return self.offchip_reads + self.offchip_writes


@dataclass(frozen=True)
class InvariantViolation:
    """One conservation law the invariant monitor saw broken.

    ``rule`` is a stable identifier from the catalogue in
    ``docs/TRACING.md`` (INV001..); ``measured``/``expected`` carry the
    two sides of the broken equality when the law is numeric.
    """

    rule: str
    message: str
    ordinal: int = -1
    component: str = ""
    measured: float = 0.0
    expected: float = 0.0


ActivityMask = FrozenSet[Component]


def activity_breakdown(
    busy: Mapping[Component, Sequence[Interval]], roi_s: float
) -> Dict[ActivityMask, float]:
    """Segment [0, roi) by the set of concurrently active components.

    Returns seconds per active-set; ``frozenset()`` is idle time.  This is
    the data behind the paper's Fig. 3/6 stacked run-time bars.
    """
    merged = {comp: merge_intervals(list(ivs)) for comp, ivs in busy.items()}
    boundaries = {0.0, roi_s}
    for intervals in merged.values():
        for iv in intervals:
            if 0.0 <= iv.start <= roi_s:
                boundaries.add(iv.start)
            if 0.0 <= iv.end <= roi_s:
                boundaries.add(iv.end)
    points = sorted(boundaries)
    out: Dict[ActivityMask, float] = {}
    for lo, hi in zip(points, points[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        active = frozenset(
            comp
            for comp, intervals in merged.items()
            if any(iv.start <= mid < iv.end for iv in intervals)
        )
        out[active] = out.get(active, 0.0) + (hi - lo)
    return out


@dataclass
class SimResult:
    """Everything a simulation run produces."""

    pipeline_name: str
    system_kind: str
    roi_s: float
    stages: Tuple[StageRecord, ...]
    busy: Dict[Component, List[Interval]]
    launch_intervals: List[Interval]
    line_bytes: int
    # Off-chip log (program order): block, is_write, stage ordinal, component
    # code, plus the map from ordinal to logical-stage index.
    log_blocks: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    log_is_write: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))
    log_stage: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    log_component: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int8))
    logical_of_ordinal: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int32)
    )
    # Unique blocks touched per component at the *request* level (Fig. 4).
    touched_blocks: Dict[Component, np.ndarray] = field(default_factory=dict)
    total_flops: float = 0.0
    flops_by_component: Dict[Component, float] = field(default_factory=dict)
    # Conservation-law violations found by an attached InvariantMonitor
    # (repro.sim.observe); empty for untraced runs and for clean traced
    # runs, so attaching the monitor is observation-only in the clean case.
    violations: Tuple[InvariantViolation, ...] = ()

    # -- time ---------------------------------------------------------------

    def busy_time(self, component: Component) -> float:
        return total_time(self.busy.get(component, []))

    def utilization(self, component: Component) -> float:
        return self.busy_time(component) / self.roi_s if self.roi_s else 0.0

    def activity(self) -> Dict[ActivityMask, float]:
        return activity_breakdown(self.busy, self.roi_s)

    def exclusive_time(self, component: Component) -> float:
        """Time during which only ``component`` is active."""
        return self.activity().get(frozenset({component}), 0.0)

    def overlapped_time(self) -> float:
        """Time during which two or more components are active."""
        return sum(t for mask, t in self.activity().items() if len(mask) >= 2)

    def idle_time(self) -> float:
        return self.activity().get(frozenset(), 0.0)

    def serial_launch_time(self) -> float:
        """Cserial of Eq. 1: launch time not masked by GPU or copy activity.

        Iterates launch slivers and subtracts the portions overlapped by any
        concurrently executing kernel or copy.
        """
        masking = merge_intervals(
            list(self.busy.get(Component.GPU, []))
            + list(self.busy.get(Component.COPY, []))
        )
        serial = 0.0
        for launch in self.launch_intervals:
            covered = 0.0
            for iv in masking:
                lo = max(launch.start, iv.start)
                hi = min(launch.end, iv.end)
                if hi > lo:
                    covered += hi - lo
            serial += max(0.0, launch.length - covered)
        return serial

    # -- memory ------------------------------------------------------------------

    def offchip_accesses(self) -> int:
        return int(len(self.log_blocks))

    def offchip_by_component(self) -> Dict[Component, int]:
        from repro.sim.hierarchy import COMPONENT_BY_CODE

        out = {comp: 0 for comp in Component}
        if len(self.log_component):
            codes, counts = np.unique(self.log_component, return_counts=True)
            for code, count in zip(codes, counts):
                out[COMPONENT_BY_CODE[int(code)]] = int(count)
        return out

    def offchip_bytes(self) -> int:
        return self.offchip_accesses() * self.line_bytes

    def footprint_bytes_by_component(self) -> Dict[Component, int]:
        return {
            comp: int(len(blocks)) * self.line_bytes
            for comp, blocks in self.touched_blocks.items()
        }

    def total_footprint_bytes(self) -> int:
        if not self.touched_blocks:
            return 0
        union = np.unique(np.concatenate(list(self.touched_blocks.values())))
        return int(len(union)) * self.line_bytes

    # -- convenience -----------------------------------------------------------

    def stages_by_logical(self) -> Dict[str, List[StageRecord]]:
        out: Dict[str, List[StageRecord]] = {}
        for record in self.stages:
            out.setdefault(record.logical, []).append(record)
        return out

    def summary(self) -> Dict[str, float]:
        return {
            "roi_s": self.roi_s,
            "cpu_busy_s": self.busy_time(Component.CPU),
            "gpu_busy_s": self.busy_time(Component.GPU),
            "copy_busy_s": self.busy_time(Component.COPY),
            "gpu_utilization": self.utilization(Component.GPU),
            "offchip_accesses": float(self.offchip_accesses()),
            "footprint_bytes": float(self.total_footprint_bytes()),
        }
