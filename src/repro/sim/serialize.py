"""JSON serialization of simulation results.

Lets users archive sweeps, diff runs across library versions, or feed the
numbers into external plotting tools.  The off-chip log is summarized (not
dumped raw) to keep files small; pass ``include_log=True`` to keep it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from repro.sim.hierarchy import Component
from repro.sim.results import SimResult


def result_to_dict(result: SimResult, include_log: bool = False) -> Dict[str, Any]:
    """Convert a :class:`SimResult` to plain JSON-compatible data."""
    payload: Dict[str, Any] = {
        "schema": "repro.sim_result/v1",
        "pipeline": result.pipeline_name,
        "system": result.system_kind,
        "roi_s": result.roi_s,
        "line_bytes": result.line_bytes,
        "total_flops": result.total_flops,
        "busy_s": {
            component.value: result.busy_time(component) for component in Component
        },
        "utilization": {
            component.value: result.utilization(component)
            for component in Component
        },
        "offchip_accesses": result.offchip_accesses(),
        "offchip_by_component": {
            component.value: count
            for component, count in result.offchip_by_component().items()
        },
        "footprint_bytes": result.total_footprint_bytes(),
        "footprint_by_component": {
            component.value: size
            for component, size in result.footprint_bytes_by_component().items()
        },
        "serial_launch_s": result.serial_launch_time(),
        "stages": [
            {
                "name": record.name,
                "logical": record.logical,
                "kind": record.kind.value,
                "component": record.component.value,
                "start_s": record.start_s,
                "end_s": record.end_s,
                "compute_s": record.timing.compute_s,
                "memory_s": record.timing.memory_s,
                "latency_s": record.timing.latency_s,
                "fault_s": record.timing.fault_s,
                "requests": record.requests,
                "offchip_reads": record.offchip_reads,
                "offchip_writes": record.offchip_writes,
                "onchip_transfers": record.onchip_transfers,
                "faults": record.faults,
            }
            for record in result.stages
        ],
    }
    if include_log:
        payload["log"] = {
            "blocks": result.log_blocks.tolist(),
            "is_write": result.log_is_write.tolist(),
            "stage": result.log_stage.tolist(),
            "component": result.log_component.tolist(),
            "logical_of_ordinal": result.logical_of_ordinal.tolist(),
        }
    return payload


def result_to_json(
    result: SimResult, include_log: bool = False, indent: Optional[int] = 2
) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result, include_log=include_log), indent=indent)


def summary_from_json(text: str) -> Dict[str, Any]:
    """Load a serialized result and return its top-level summary fields.

    Raises ``ValueError`` on schema mismatch so stale archives fail loudly.
    """
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema != "repro.sim_result/v1":
        raise ValueError(f"unsupported schema {schema!r}")
    return payload
