"""JSON serialization of simulation results.

Lets users archive sweeps, diff runs across library versions, or feed the
numbers into external plotting tools.  The off-chip log is summarized (not
dumped raw) to keep files small; pass ``include_log=True`` to keep it.

Two schemas are emitted:

* ``repro.sim_result/v1`` — the human-oriented summary
  (:func:`result_to_dict`), derived metrics included, not reconstructible.
* ``repro.sim_result/v2-full`` — the lossless form
  (:func:`result_to_full_dict` / :func:`result_from_dict`) that round-trips
  a :class:`SimResult` bit-for-bit; the persistent sweep cache
  (:mod:`repro.sim.resultcache`) is built on it.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

import numpy as np

from repro.sim.hierarchy import Component
from repro.sim.results import (
    Interval,
    InvariantViolation,
    SimResult,
    StageRecord,
)
from repro.sim.timing import StageTiming
from repro.pipeline.stage import StageKind

SCHEMA_V1 = "repro.sim_result/v1"
SCHEMA_FULL = "repro.sim_result/v2-full"


def result_to_dict(result: SimResult, include_log: bool = False) -> Dict[str, Any]:
    """Convert a :class:`SimResult` to plain JSON-compatible data."""
    payload: Dict[str, Any] = {
        "schema": SCHEMA_V1,
        "pipeline": result.pipeline_name,
        "system": result.system_kind,
        "roi_s": result.roi_s,
        "line_bytes": result.line_bytes,
        "total_flops": result.total_flops,
        "busy_s": {
            component.value: result.busy_time(component) for component in Component
        },
        "utilization": {
            component.value: result.utilization(component)
            for component in Component
        },
        "offchip_accesses": result.offchip_accesses(),
        "offchip_by_component": {
            component.value: count
            for component, count in result.offchip_by_component().items()
        },
        "footprint_bytes": result.total_footprint_bytes(),
        "footprint_by_component": {
            component.value: size
            for component, size in result.footprint_bytes_by_component().items()
        },
        "serial_launch_s": result.serial_launch_time(),
        "stages": [
            {
                "name": record.name,
                "logical": record.logical,
                "kind": record.kind.value,
                "component": record.component.value,
                "start_s": record.start_s,
                "end_s": record.end_s,
                "compute_s": record.timing.compute_s,
                "memory_s": record.timing.memory_s,
                "latency_s": record.timing.latency_s,
                "fault_s": record.timing.fault_s,
                "requests": record.requests,
                "offchip_reads": record.offchip_reads,
                "offchip_writes": record.offchip_writes,
                "onchip_transfers": record.onchip_transfers,
                "faults": record.faults,
            }
            for record in result.stages
        ],
    }
    if include_log:
        payload["log"] = {
            "blocks": result.log_blocks.tolist(),
            "is_write": result.log_is_write.tolist(),
            "stage": result.log_stage.tolist(),
            "component": result.log_component.tolist(),
            "logical_of_ordinal": result.logical_of_ordinal.tolist(),
        }
    return payload


def result_to_json(
    result: SimResult, include_log: bool = False, indent: Optional[int] = 2
) -> str:
    """Serialize a result to a JSON string."""
    return json.dumps(result_to_dict(result, include_log=include_log), indent=indent)


def summary_from_json(text: str) -> Dict[str, Any]:
    """Load a serialized result and return its top-level summary fields.

    Raises ``ValueError`` on schema mismatch so stale archives fail loudly.
    """
    payload = json.loads(text)
    schema = payload.get("schema")
    if schema not in (SCHEMA_V1, SCHEMA_FULL):
        raise ValueError(f"unsupported schema {schema!r}")
    return payload


# -- lossless round trip ------------------------------------------------------


def _interval_pairs(intervals) -> list:
    return [[iv.start, iv.end] for iv in intervals]


def result_to_full_dict(result: SimResult) -> Dict[str, Any]:
    """Lossless ``repro.sim_result/v2-full`` form of a result.

    Supersets the v1 summary with everything :func:`result_from_dict` needs
    to rebuild the :class:`SimResult` exactly: busy/launch intervals, the raw
    off-chip log, per-component touched-block sets, FLOP attribution, and
    per-stage ordinals.  JSON floats round-trip exactly (``repr`` encoding),
    so serialize-then-load yields bit-identical results.
    """
    payload = result_to_dict(result, include_log=True)
    payload["schema"] = SCHEMA_FULL
    for entry, record in zip(payload["stages"], result.stages):
        entry["ordinal"] = record.ordinal
        entry["flops"] = record.flops
    payload["busy"] = {
        component.value: _interval_pairs(intervals)
        for component, intervals in result.busy.items()
    }
    payload["launch_intervals"] = _interval_pairs(result.launch_intervals)
    payload["touched_blocks"] = {
        component.value: blocks.tolist()
        for component, blocks in result.touched_blocks.items()
    }
    payload["flops_by_component"] = {
        component.value: flops
        for component, flops in result.flops_by_component.items()
    }
    # Optional (engine >= repro-sim/2): invariant-monitor findings.  Only
    # written when present so clean traces stay byte-compatible with
    # pre-violations archives.
    if result.violations:
        payload["violations"] = [
            {
                "rule": violation.rule,
                "message": violation.message,
                "ordinal": violation.ordinal,
                "component": violation.component,
                "measured": violation.measured,
                "expected": violation.expected,
            }
            for violation in result.violations
        ]
    return payload


def result_from_dict(payload: Dict[str, Any]) -> SimResult:
    """Rebuild a :class:`SimResult` from its ``v2-full`` dictionary."""
    schema = payload.get("schema")
    if schema != SCHEMA_FULL:
        raise ValueError(
            f"cannot reconstruct a result from schema {schema!r}; "
            f"only {SCHEMA_FULL!r} archives are lossless"
        )
    stages = tuple(
        StageRecord(
            name=entry["name"],
            logical=entry["logical"],
            kind=StageKind(entry["kind"]),
            component=Component(entry["component"]),
            ordinal=int(entry["ordinal"]),
            start_s=entry["start_s"],
            end_s=entry["end_s"],
            timing=StageTiming(
                compute_s=entry["compute_s"],
                memory_s=entry["memory_s"],
                latency_s=entry["latency_s"],
                fault_s=entry["fault_s"],
            ),
            requests=int(entry["requests"]),
            offchip_reads=int(entry["offchip_reads"]),
            offchip_writes=int(entry["offchip_writes"]),
            onchip_transfers=int(entry["onchip_transfers"]),
            faults=int(entry["faults"]),
            flops=float(entry["flops"]),
        )
        for entry in payload["stages"]
    )
    log = payload.get("log", {})
    return SimResult(
        pipeline_name=payload["pipeline"],
        system_kind=payload["system"],
        roi_s=payload["roi_s"],
        stages=stages,
        busy={
            Component(name): [Interval(start, end) for start, end in pairs]
            for name, pairs in payload["busy"].items()
        },
        launch_intervals=[
            Interval(start, end) for start, end in payload["launch_intervals"]
        ],
        line_bytes=int(payload["line_bytes"]),
        log_blocks=np.asarray(log.get("blocks", []), dtype=np.int64),
        log_is_write=np.asarray(log.get("is_write", []), dtype=bool),
        log_stage=np.asarray(log.get("stage", []), dtype=np.int32),
        log_component=np.asarray(log.get("component", []), dtype=np.int8),
        logical_of_ordinal=np.asarray(
            log.get("logical_of_ordinal", []), dtype=np.int32
        ),
        touched_blocks={
            Component(name): np.asarray(blocks, dtype=np.int64)
            for name, blocks in payload["touched_blocks"].items()
        },
        total_flops=float(payload["total_flops"]),
        flops_by_component={
            Component(name): float(flops)
            for name, flops in payload["flops_by_component"].items()
        },
        # Absent from archives written before engine repro-sim/2; default
        # to "no violations" so old cache entries keep deserializing.
        violations=tuple(
            InvariantViolation(
                rule=entry["rule"],
                message=entry["message"],
                ordinal=int(entry.get("ordinal", -1)),
                component=entry.get("component", ""),
                measured=float(entry.get("measured", 0.0)),
                expected=float(entry.get("expected", 0.0)),
            )
            for entry in payload.get("violations", [])
        ),
    )


def results_identical(a: SimResult, b: SimResult) -> bool:
    """True when two results are identical in every serialized field.

    The comparison goes through :func:`result_to_full_dict`, so it covers
    schedules, timings, logs, and footprints — the equality the differential
    (serial vs parallel vs cached) tests rely on.
    """
    return result_to_full_dict(a) == result_to_full_dict(b)
