"""System simulator: caches, memories, copy engine, page faults, scheduler."""

from repro.sim.cache import CacheStats, SetAssocCache
from repro.sim.dram import BandwidthShare, MemorySystem
from repro.sim.coherence import BusOp, CoherenceStats, MesiDirectory, MesiState
from repro.sim.dram_row import (
    RowBufferStats,
    effective_efficiency,
    row_buffer_stats,
    stream_efficiency,
)
from repro.sim.engine import ENGINE_VERSION, Engine, SimOptions, simulate
from repro.sim.hierarchy import (
    COMPONENT_BY_CODE,
    CacheSystem,
    Component,
    Domain,
    DomainResult,
    OffChipLog,
)
from repro.sim.occupancy import (
    OccupancyLimiter,
    OccupancyReport,
    compute_occupancy,
    derive_stage_occupancy,
)
from repro.sim.pagefault import FaultResult, PageFaultModel, premapped_pages
from repro.sim.pcie import CopyEngine, CopyTiming
from repro.sim.results import (
    Interval,
    SimResult,
    StageRecord,
    activity_breakdown,
    merge_intervals,
    total_time,
)
from repro.sim.resultcache import (
    CacheEntry,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.sim.serialize import (
    result_from_dict,
    result_to_dict,
    result_to_full_dict,
    result_to_json,
    results_identical,
    summary_from_json,
)
from repro.sim.timeline import render_stage_table, render_timeline, utilization_summary
from repro.sim.timing import StageTiming, compute_stage_timing

__all__ = [
    "BandwidthShare",
    "BusOp",
    "COMPONENT_BY_CODE",
    "CacheEntry",
    "CacheStats",
    "CacheSystem",
    "CoherenceStats",
    "Component",
    "CopyEngine",
    "CopyTiming",
    "Domain",
    "DomainResult",
    "ENGINE_VERSION",
    "Engine",
    "FaultResult",
    "Interval",
    "MemorySystem",
    "MesiDirectory",
    "MesiState",
    "OccupancyLimiter",
    "OccupancyReport",
    "OffChipLog",
    "ResultCache",
    "RowBufferStats",
    "PageFaultModel",
    "SetAssocCache",
    "SimOptions",
    "SimResult",
    "StageRecord",
    "StageTiming",
    "activity_breakdown",
    "cache_key",
    "compute_occupancy",
    "default_cache_dir",
    "compute_stage_timing",
    "derive_stage_occupancy",
    "effective_efficiency",
    "merge_intervals",
    "premapped_pages",
    "render_stage_table",
    "row_buffer_stats",
    "stream_efficiency",
    "render_timeline",
    "result_from_dict",
    "result_to_dict",
    "result_to_full_dict",
    "result_to_json",
    "results_identical",
    "simulate",
    "summary_from_json",
    "total_time",
    "utilization_summary",
]
