"""Content-addressed stage-level memoization for the simulation engine.

Every stage execution's *memory step* — the page-fault touch, the stream's
trip through the cache hierarchy, and the off-chip log appends it produces
— is a pure function of (stage access stream, cache configurations,
incoming cache state, page-table state).  The engine therefore keys each
memory step by a content hash of exactly those inputs and, when the key
repeats, *replays* the recorded sub-result instead of recomputing it:
the log deltas are re-appended (retagged with the current stage ordinal),
the cache post-states are restored, the statistics deltas re-applied, and
the page-fault effects re-mapped.  Timing, scheduling, bandwidth shares,
and trace events are cheap arithmetic over the replayed counters and are
always recomputed live, which is what keeps memoized runs bit-exact with
memo-off runs (enforced by tests/test_stage_memo.py and the differential
matrix of tests/test_engine_equivalence.py).

Keys repeat massively in practice: iterated pipelines (stencil sweeps,
kmeans-style offload loops) reach a cache-state fixed point after a couple
of iterations, after which every further iteration is a hit; repeated
in-process runs (figure modules, bench reps, the equivalence suite's
double-runs) hit from the first stage.  The memo is process-wide and
shared across engine instances — state digests make sharing safe — and,
like the persistent :mod:`repro.sim.resultcache`, entries are shared
between the ``reference`` and ``fast`` cache implementations because the
two are bit-identical (cache state snapshots are stored in a canonical
impl-independent form).

Both the entry count and the (approximate) retained bytes are bounded;
exceeding either bound clears the memo wholesale, mirroring the trace
memo's policy — a long-lived process sweeping many scales cannot grow
without limit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "MemoStats",
    "StageEntry",
    "StageMemo",
    "clear_shared_stage_memo",
    "shared_stage_memo",
    "stage_memo_snapshot",
]

#: Entry bound of the stage memo; exceeded -> wholesale clear.
_MEMO_MAX_ENTRIES = 4096

#: Approximate byte bound of retained arrays; exceeded -> wholesale clear.
#: Stage entries hold log-delta and cache-snapshot arrays whose size grows
#: with scale, so the byte bound (not the entry bound) is what protects
#: paper-scale runs.
_MEMO_MAX_BYTES = 256 << 20

#: One recorded off-chip log delta: (blocks, is_write, component code).
#: Arrays are shared references into the recording run's log and must
#: never be mutated.
LogPart = Tuple[np.ndarray, np.ndarray, int]

#: One cache's canonical state snapshot, impl-independent:
#: (per-set line counts, block ids in LRU->MRU set order, dirty flags).
CacheState = Tuple[np.ndarray, np.ndarray, np.ndarray]


@dataclass
class MemoStats:
    """Cumulative lookup counters of one :class:`StageMemo`."""

    hits: int = 0
    misses: int = 0
    clears: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> Tuple[int, int]:
        """(hits, misses) — subtract two snapshots for a per-run delta."""
        return (self.hits, self.misses)


@dataclass(frozen=True)
class StageEntry:
    """Everything needed to replay one stage's memory step.

    ``mem`` carries the :class:`~repro.sim.hierarchy.DomainResult` fields
    (requests, offchip reads/writes, on-chip transfers, offchip block ids);
    ``fault`` the page-fault outcome (count, CPU service seconds, zeroed
    blocks, newly mapped pages) or ``None`` when no fault model was
    consulted; ``cache_states`` the post-step snapshots aligned with the
    involved-cache list the key was built from; ``stats_deltas`` the
    per-cache counter increments in the same order.  ``aux`` holds
    step-specific extras (the per-cache drain writeback arrays).
    """

    log_parts: Tuple[LogPart, ...]
    mem: Optional[Tuple[int, int, int, int, Optional[np.ndarray]]]
    fault: Optional[Tuple[int, float, np.ndarray, np.ndarray]]
    cache_states: Tuple[CacheState, ...]
    stats_deltas: Tuple[Tuple[int, ...], ...]
    aux: Tuple[np.ndarray, ...] = ()
    nbytes: int = 0


def _entry_nbytes(entry: StageEntry) -> int:
    total = 0
    for blocks, is_write, _ in entry.log_parts:
        total += blocks.nbytes + is_write.nbytes
    if entry.mem is not None and entry.mem[4] is not None:
        total += entry.mem[4].nbytes
    if entry.fault is not None:
        total += entry.fault[2].nbytes + entry.fault[3].nbytes
    for state in entry.cache_states:
        total += sum(arr.nbytes for arr in state)
    for arr in entry.aux:
        total += arr.nbytes
    return total


class StageMemo:
    """Bounded process-wide map from stage-step keys to replayable entries."""

    def __init__(
        self,
        max_entries: int = _MEMO_MAX_ENTRIES,
        max_bytes: int = _MEMO_MAX_BYTES,
    ):
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = MemoStats()
        self._entries: Dict[Tuple, StageEntry] = {}
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def retained_bytes(self) -> int:
        return self._bytes

    def lookup(self, key: Tuple) -> Optional[StageEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def store(self, key: Tuple, entry: StageEntry) -> None:
        nbytes = _entry_nbytes(entry)
        entry = StageEntry(
            log_parts=entry.log_parts,
            mem=entry.mem,
            fault=entry.fault,
            cache_states=entry.cache_states,
            stats_deltas=entry.stats_deltas,
            aux=entry.aux,
            nbytes=nbytes,
        )
        if (
            len(self._entries) >= self.max_entries
            or self._bytes + nbytes > self.max_bytes
        ):
            self.clear()
            self.stats.clears += 1
        self._entries[key] = entry
        self._bytes += nbytes

    def clear(self) -> None:
        """Drop every entry (counters are cumulative and survive)."""
        self._entries.clear()
        self._bytes = 0


_shared: Optional[StageMemo] = None


def shared_stage_memo() -> StageMemo:
    """The process-wide stage memo every engine instance shares."""
    global _shared
    if _shared is None:
        _shared = StageMemo()
    return _shared


def stage_memo_snapshot() -> Tuple[int, int]:
    """(hits, misses) of the shared memo; cheap even before first use."""
    if _shared is None:
        return (0, 0)
    return _shared.stats.snapshot()


def clear_shared_stage_memo() -> None:
    """Empty the shared memo (cumulative counters survive, per the
    :meth:`StageMemo.clear` contract).  The bench harness calls this so
    cold measurements start from an empty memo and every rep sees the
    same deterministic hit pattern."""
    if _shared is not None:
        _shared.clear()


# -- canonical cache-state helpers (used by the engine) ----------------------


def states_digest(states: Sequence[CacheState]) -> bytes:
    """16-byte content digest of a sequence of cache-state snapshots."""
    h = hashlib.blake2b(digest_size=16)
    for lengths, blocks, dirty in states:
        h.update(lengths.tobytes())
        h.update(blocks.tobytes())
        h.update(dirty.tobytes())
    return h.digest()


def stats_tuple(cache) -> Tuple[int, ...]:
    """Counter snapshot of one cache's :class:`CacheStats`."""
    s = cache.stats
    return (s.accesses, s.hits, s.misses, s.writebacks, s.invalidations)


def stats_delta(before: Tuple[int, ...], after: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(b - a for b, a in zip(after, before))


def apply_stats_delta(cache, delta: Tuple[int, ...]) -> None:
    s = cache.stats
    s.accesses += delta[0]
    s.hits += delta[1]
    s.misses += delta[2]
    s.writebacks += delta[3]
    s.invalidations += delta[4]
