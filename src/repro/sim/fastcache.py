"""Vectorized fast-path implementation of the set-associative LRU cache.

:class:`FastSetAssocCache` is a drop-in replacement for
:class:`repro.sim.cache.SetAssocCache` that produces bit-identical output
(downstream stream contents *and order*, statistics, and final cache state)
while replacing the per-access Python loop with one offline, whole-stream
numpy computation per ``access_stream`` call.

The algorithm rests on the classic LRU *stack property* (Mattson et al.):
within one set, an access hits if and only if fewer than ``assoc`` distinct
blocks of that set were touched since the block's previous access.  The
call is processed in four vectorized passes:

1. **Set-major layout.** Accesses are grouped by set (one stable argsort),
   and each set's current stack (LRU -> MRU) is prepended as *virtual*
   accesses carrying the lines' dirty bits, so pre-existing residency needs
   no special cases anywhere downstream.
2. **Classification.** Previous/next occurrences per (set, block) come
   from one stable argsort of block ids.  An access with reuse gap
   ``g < assoc`` is a hit and ``g``-independent rules resolve whole sets
   with at most ``assoc`` distinct blocks; the remainder count distinct
   blocks in the reuse window exactly, scanning backwards in fixed-width
   chunks and stopping as soon as the count reaches ``assoc`` (a proven
   miss).  A pathological stream that exhausts the scan budget falls back
   to the serial loop for the whole call — state is only committed at the
   end, so the fallback is always safe.
3. **Residency runs.** Consecutive occurrences ``[miss, hit...]`` of a
   block form one residency run whose dirty flag is the OR of its write
   flags.  A miss evicts iff at least ``assoc`` distinct blocks of the set
   preceded it, and the victims are exactly the runs with the smallest
   end positions, matched in time order (evictions consume least-recently
   -used lines, and a run only becomes evictable after its last hit).
   Survivors, ordered by end position, are the final LRU -> MRU stacks.
4. **Downstream assembly.** Each miss emits its fill read, immediately
   followed by its dirty victim's writeback, rebuilt in original stream
   order with one cumulative-sum scatter.

Streams shorter than :data:`SERIAL_CUTOFF` skip the fixed numpy overhead
and use a tuned ``OrderedDict`` loop with the same semantics.  The
differential suite (``tests/test_engine_equivalence.py``) and the
Hypothesis property tests (``tests/test_cache_vectorized.py``) hold both
paths to bit-exact equality with the reference implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.config.components import CacheConfig
from repro.sim.cache import CacheStats
from repro.trace.stream import AccessStream

#: Streams shorter than this use the serial loop; the offline passes cost
#: a handful of argsorts/scans whose fixed overhead only amortizes on
#: reasonably long streams.
SERIAL_CUTOFF = 512

#: Reuse-window scan widths (columns per backward chunk) by associativity.
#: Wider windows resolve high-associativity sets in one pass; narrow ones
#: waste less work when ``assoc`` is small.
_WINDOW_LARGE = 24
_WINDOW_MEDIUM = 16
_WINDOW_SMALL = 8


def _window_width(assoc: int) -> int:
    if assoc <= 4:
        return _WINDOW_SMALL
    if assoc <= 8:
        return _WINDOW_MEDIUM
    return _WINDOW_LARGE

#: Backward-scan element budget multiplier (times the padded stream
#: length).  Exceeding it aborts the offline pass — before any state is
#: mutated — and reruns the whole call through the serial loop.
_RESIDUE_BUDGET_FACTOR = 32

#: Element bound of one window-scan chunk (keeps gather matrices small).
_CHUNK_ELEMS = 1 << 21

#: Above this many lookup blocks, ``invalidate``/``flush`` narrow the
#: candidate set with one vectorized membership test first.
_BULK_LOOKUP_MIN = 64


def _stable_argsort_ids(values: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative ids, via 16-bit radix when possible.

    numpy's stable sort is a radix sort for <= 16-bit integers but falls
    back to mergesort (~10x slower) for wider types.  Ids below 2**32 sort
    stably as two 16-bit passes, low half first; wider values use the
    generic path.
    """
    n = len(values)
    if n < 2:
        return np.arange(n, dtype=np.int64)
    peak = int(values.max())
    if peak < 1 << 16:
        return np.argsort(values.astype(np.uint16), kind="stable")
    if peak < 1 << 32:
        low = (values & 0xFFFF).astype(np.uint16)
        high = (values >> 16).astype(np.uint16)
        order = np.argsort(low, kind="stable")
        return order[np.argsort(high[order], kind="stable")]
    return np.argsort(values, kind="stable")


class FastSetAssocCache:
    """Bit-exact vectorized twin of :class:`~repro.sim.cache.SetAssocCache`.

    State is one insertion-ordered ``OrderedDict`` per set mapping block id
    to its dirty flag; iteration order is LRU -> MRU, exactly the per-set
    list order of the reference implementation.
    """

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.assoc = config.associativity
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()

    # -- queries ---------------------------------------------------------------

    def __contains__(self, block: int) -> bool:
        return block in self._sets[block % self.num_sets]

    @property
    def resident_blocks(self) -> Set[int]:
        """Snapshot of resident block ids (unlike the reference, a copy)."""
        return {block for lru in self._sets for block in lru}

    def resident_array(self) -> np.ndarray:
        """Resident block ids as an int64 array (for vectorized probes)."""
        blocks = [block for lru in self._sets for block in lru]
        return np.asarray(blocks, dtype=np.int64)

    @property
    def occupancy(self) -> int:
        return sum(len(lru) for lru in self._sets)

    def is_dirty(self, block: int) -> bool:
        return self._sets[block % self.num_sets].get(block, False)

    # -- the hot path ----------------------------------------------------------

    def access_stream(self, stream: AccessStream) -> AccessStream:
        """Run a stream through the cache; return the downstream stream.

        Identical contract to the reference: the downstream stream holds, in
        occurrence order, a read for every miss fill and a write for every
        dirty eviction.
        """
        n = len(stream)
        if not n:
            return AccessStream.empty()
        blocks = stream.blocks
        is_write = stream.is_write
        if n >= SERIAL_CUTOFF:
            processed = self._process_offline(blocks, is_write)
        else:
            processed = None
        if processed is None:
            processed = self._process_serial(blocks, is_write)
        out_b, out_w, hits, writebacks = processed
        self.stats.accesses += n
        self.stats.hits += hits
        self.stats.misses += n - hits
        self.stats.writebacks += writebacks
        return AccessStream(out_b, out_w)

    def _process_serial(
        self, blocks: np.ndarray, is_write: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """Reference-semantics loop (short streams and the safety net)."""
        sets = self._sets
        num_sets = self.num_sets
        assoc = self.assoc
        out_b: List[int] = []
        out_w: List[bool] = []
        append_b = out_b.append
        append_w = out_w.append
        hits = 0
        writebacks = 0
        for block, write in zip(blocks.tolist(), is_write.tolist()):
            lru = sets[block % num_sets]
            if block in lru:
                lru.move_to_end(block)
                if write:
                    lru[block] = True
                hits += 1
            else:
                append_b(block)
                append_w(False)
                lru[block] = write
                if len(lru) > assoc:
                    victim, victim_dirty = lru.popitem(last=False)
                    if victim_dirty:
                        append_b(victim)
                        append_w(True)
                        writebacks += 1
        return (
            np.asarray(out_b, dtype=np.int64),
            np.asarray(out_w, dtype=bool),
            hits,
            writebacks,
        )

    def _process_offline(
        self, blocks: np.ndarray, is_write: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray, int, int]]:
        """Whole-call vectorized processing; None if the scan budget blows.

        Mutates no state until every classification is final, so a None
        return leaves the cache ready for the serial fallback.
        """
        n = len(blocks)
        num_sets = self.num_sets
        assoc = self.assoc

        # ---- set-major layout with each set's stack as a virtual prefix ----
        k = np.fromiter((len(lru) for lru in self._sets), np.int64, num_sets)
        if num_sets > 1:
            if num_sets & (num_sets - 1) == 0:
                set_ids = blocks & (num_sets - 1)
            else:
                set_ids = blocks % num_sets
            real_counts = np.bincount(set_ids, minlength=num_sets)
            order = _stable_argsort_ids(set_ids)
        else:
            real_counts = np.asarray([n], dtype=np.int64)
            order = None

        total_counts = k + real_counts
        m = int(total_counts.sum())
        starts = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(total_counts, out=starts[1:])

        sm_block = np.empty(m, dtype=np.int64)
        sm_write = np.empty(m, dtype=bool)
        sm_real = np.full(m, -1, dtype=np.int32)
        total_k = int(k.sum())
        if total_k:
            # Flatten every set's stack in one pass; row `starts[s] + j` is
            # the j-th (LRU-most) virtual line of set s.
            vdest = np.arange(total_k, dtype=np.int64) + np.repeat(
                starts[:-1] - np.concatenate([np.zeros(1, np.int64), k.cumsum()[:-1]]),
                k,
            )
            sm_block[vdest] = np.fromiter(
                (b for lru in self._sets for b in lru), np.int64, total_k
            )
            sm_write[vdest] = np.fromiter(
                (d for lru in self._sets for d in lru.values()), bool, total_k
            )
        if order is None:
            base = int(k[0])
            sm_block[base:] = blocks
            sm_write[base:] = is_write
            sm_real[base:] = np.arange(n, dtype=np.int32)
        else:
            sorted_sets = set_ids[order]
            cum_real = np.zeros(num_sets + 1, dtype=np.int32)
            np.cumsum(real_counts, out=cum_real[1:])
            dest = (
                np.arange(n, dtype=np.int32)
                - cum_real[sorted_sets]
                + (starts[:-1] + k)[sorted_sets].astype(np.int32)
            )
            sm_block[dest] = blocks[order]
            sm_write[dest] = is_write[order]
            sm_real[dest] = order

        set_of_row = np.repeat(np.arange(num_sets, dtype=np.int32), total_counts)
        # Positions fit comfortably in int32; narrower arrays halve the
        # memory traffic of the gather-heavy passes below.
        pos_in_set = np.arange(m, dtype=np.int32) - starts[set_of_row].astype(
            np.int32
        )

        # ---- previous/next occurrence within each (set, block) ----
        # A block id determines its set, so one stable sort by block id
        # groups occurrences per (set, block) in time order (virtual rows
        # precede real ones by construction).
        bo = _stable_argsort_ids(sm_block)
        bo_blocks = sm_block[bo]
        same = bo_blocks[1:] == bo_blocks[:-1]
        prevpos = np.full(m, -1, dtype=np.int32)
        nextpos = np.full(m, m, dtype=np.int32)
        prevpos[bo[1:][same]] = pos_in_set[bo[:-1][same]]
        nextpos[bo[:-1][same]] = pos_in_set[bo[1:][same]]
        first_occ = prevpos < 0

        # ---- classification: hit iff < assoc distinct blocks in the gap ----
        g = pos_in_set - prevpos  # same-set accesses since previous use
        g -= 1
        repeat_occ = ~first_occ
        hit = repeat_occ & (g < assoc)
        cs = np.cumsum(first_occ, dtype=np.int32)
        set_distinct = np.bincount(set_of_row[first_occ], minlength=num_sets)
        small = set_distinct <= assoc
        if small.any():
            # Sets whose whole working set fits never evict: every repeat hits.
            hit |= repeat_occ & small[set_of_row]
        pend = np.nonzero(repeat_occ & ~hit)[0]
        if len(pend):
            # Cheap miss proof before any window scan: first occurrences
            # inside the reuse gap are pairwise-distinct blocks, and gap
            # rows are contiguous in the set-major layout, so two gathers
            # of the running first-occurrence count lower-bound the gap's
            # distinct count.  High-entropy streams resolve almost every
            # pending row here.
            fo_gap = cs[pend - 1] - cs[pend - 1 - g[pend]]
            pend = pend[fo_gap < assoc]
        if len(pend):
            window = _window_width(assoc)
            hit_pend = _window_classify(
                pend, g, pos_in_set, nextpos, assoc, window, m
            )
            if hit_pend is None:
                return None
            hit[pend[hit_pend]] = True

        # ---- evictions: a miss evicts iff >= assoc distinct preceded it ----
        miss = ~hit  # virtual rows count as "misses" but never evict/emit
        seen_before_set = np.concatenate([np.zeros(1, np.int32), cs])[starts[:-1]]
        distinct_before = cs - np.repeat(seen_before_set, total_counts)
        distinct_before -= first_occ
        evict = miss & (distinct_before >= assoc)

        # ---- residency runs ([miss, hit...] per block, in bo order) ----
        hit_bo = hit[bo]
        run_start = np.nonzero(~hit_bo)[0]
        nruns = len(run_start)
        run_end = np.empty(nruns, dtype=np.int64)
        run_end[:-1] = run_start[1:] - 1
        run_end[-1] = m - 1
        run_dirty = np.bitwise_or.reduceat(sm_write[bo], run_start)
        run_end_row = bo[run_end]
        run_block = bo_blocks[run_start]
        run_set = set_of_row[run_end_row]

        # Per set, victims are the runs with the smallest end positions,
        # matched to the evicting misses in time order.  Sets are contiguous
        # in the set-major layout, so ordering runs by (set, end position)
        # is simply ordering them by end row.
        run_sort = _stable_argsort_ids(run_end_row)
        runs_per_set = np.bincount(run_set, minlength=num_sets)
        run_off = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(runs_per_set, out=run_off[1:])

        evict_rows = np.nonzero(evict)[0]  # ascending = per-set time order
        evicts_per_set = np.bincount(set_of_row[evict_rows], minlength=num_sets)
        wb_block = np.full(n, -1, dtype=np.int64)
        dirty_evictions = 0
        if len(evict_rows):
            eoff = np.zeros(num_sets + 1, dtype=np.int64)
            np.cumsum(evicts_per_set, out=eoff[1:])
            es = set_of_row[evict_rows]
            rank = np.arange(len(evict_rows), dtype=np.int64) - eoff[es]
            victim_run = run_sort[run_off[es] + rank]
            victim_dirty = run_dirty[victim_run]
            dirty_evictions = int(victim_dirty.sum())
            if dirty_evictions:
                wb_block[sm_real[evict_rows[victim_dirty]]] = run_block[
                    victim_run[victim_dirty]
                ]

        # ---- downstream assembly in original stream order ----
        miss_orig = np.zeros(n, dtype=bool)
        miss_orig[sm_real[miss & (sm_real >= 0)]] = True
        if dirty_evictions:
            has_wb = wb_block >= 0
            counts = np.add(miss_orig, has_wb, dtype=np.int8)
            offsets = np.cumsum(counts, dtype=np.int32)
            total = int(offsets[-1])
            offsets -= counts
            out_b = np.empty(total, dtype=np.int64)
            out_w = np.zeros(total, dtype=bool)
            out_b[offsets[miss_orig]] = blocks[miss_orig]
            wb_pos = offsets[has_wb] + 1
            out_b[wb_pos] = wb_block[has_wb]
            out_w[wb_pos] = True
        else:
            # No dirty victims: the downstream is just the miss fills.
            out_b = blocks[miss_orig]
            out_w = np.zeros(len(out_b), dtype=bool)

        # ---- commit final state: surviving runs, end position ascending ----
        new_sets: List["OrderedDict[int, bool]"] = []
        for s in range(num_sets):
            lo = int(run_off[s] + evicts_per_set[s])
            hi = int(run_off[s + 1])
            sel = run_sort[lo:hi]
            new_sets.append(
                OrderedDict(zip(run_block[sel].tolist(), run_dirty[sel].tolist()))
            )
        self._sets = new_sets

        hits_count = n - int(miss_orig.sum())
        return out_b, out_w, hits_count, dirty_evictions

    # -- maintenance ----------------------------------------------------------

    def extract(self, block: int) -> bool:
        """Silently remove a line (ownership migrated to a peer cache)."""
        lru = self._sets[block % self.num_sets]
        if block in lru:
            del lru[block]
            return True
        return False

    def _narrow(self, blocks: Iterable[int]) -> Iterable[int]:
        """Restrict a bulk lookup to blocks actually resident, in order."""
        arr = np.asarray(
            blocks if isinstance(blocks, np.ndarray) else list(blocks),
            dtype=np.int64,
        )
        if len(arr) < _BULK_LOOKUP_MIN:
            return arr.tolist()
        resident = self.resident_array()
        if not len(resident):
            return ()
        return arr[np.isin(arr, resident)].tolist()

    def invalidate(self, blocks: Iterable[int]) -> int:
        """Drop any of the given lines without writeback (DMA overwrite)."""
        dropped = 0
        sets = self._sets
        num_sets = self.num_sets
        for block in self._narrow(blocks):
            lru = sets[block % num_sets]
            if block in lru:
                del lru[block]
                dropped += 1
        self.stats.invalidations += dropped
        return dropped

    def flush(self, blocks: Iterable[int]) -> List[int]:
        """Write back and drop any dirty copies of the given lines."""
        written: List[int] = []
        sets = self._sets
        num_sets = self.num_sets
        for block in self._narrow(blocks):
            lru = sets[block % num_sets]
            if block in lru:
                if lru.pop(block):
                    written.append(block)
        self.stats.writebacks += len(written)
        return written

    def drain(self) -> List[int]:
        """Write back every dirty line and empty the cache (end of ROI)."""
        written = sorted(
            block
            for lru in self._sets
            for block, dirty in lru.items()
            if dirty
        )
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.stats.writebacks += len(written)
        return written

    # -- state snapshot (stage memoization) ------------------------------------

    def state_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical state snapshot for :mod:`repro.sim.memo`.

        Identical encoding to the reference implementation's
        ``state_arrays`` (per-set line counts, block ids in set-index order
        each LRU -> MRU, matching dirty flags): the set-major
        ``OrderedDict`` layout makes this a straight flatten, and equal
        logical states produce byte-identical snapshots across impls, so
        memoized stage entries are shared between them.
        """
        lengths = np.fromiter(
            (len(lru) for lru in self._sets), np.int32, count=self.num_sets
        )
        total = int(lengths.sum())
        blocks = np.fromiter(
            (block for lru in self._sets for block in lru),
            np.int64,
            count=total,
        )
        dirty = np.fromiter(
            (flag for lru in self._sets for flag in lru.values()),
            bool,
            count=total,
        )
        return lengths, blocks, dirty

    def restore_state(
        self, state: Tuple[np.ndarray, np.ndarray, np.ndarray]
    ) -> None:
        """Adopt a :meth:`state_arrays` snapshot (stats are untouched)."""
        lengths, blocks, dirty = state
        block_list = blocks.tolist()
        dirty_list = dirty.tolist()
        sets: List["OrderedDict[int, bool]"] = []
        pos = 0
        for count in lengths.tolist():
            sets.append(
                OrderedDict(
                    zip(
                        block_list[pos : pos + count],
                        dirty_list[pos : pos + count],
                    )
                )
            )
            pos += count
        self._sets = sets


def _window_classify(
    pend: np.ndarray,
    g: np.ndarray,
    pos_in_set: np.ndarray,
    nextpos: np.ndarray,
    assoc: int,
    window: int,
    m: int,
) -> Optional[np.ndarray]:
    """Exact windowed distinct counts for the unresolved accesses.

    For a pending row at per-set position ``p`` with reuse gap ``g``, the
    distinct blocks in the gap are exactly the gap rows that are the *last*
    occurrence of their block inside it (``nextpos >= p``).  Scanning the
    gap backwards ``window`` columns at a time, the count is exact once the
    gap is exhausted, and a partial count already >= ``assoc`` proves a
    miss.  Gap rows never leave the set: a row within the gap lies strictly
    between the previous occurrence and ``p``.

    Returns a hit mask aligned with ``pend``, or None if a pathological
    stream (huge gaps of repeats) exceeds the scan budget.
    """
    rows = pend
    # Narrow value arrays cut the gather traffic of the window matrices,
    # the dominant cost of this pass.
    if m < np.iinfo(np.int16).max:
        nextpos = nextpos.astype(np.int16)
        p = pos_in_set[rows].astype(np.int16)
    else:
        p = pos_in_set[rows]
    gaps = g[rows]
    cols = np.arange(window, dtype=np.int64)
    hit_out = np.zeros(len(rows), dtype=bool)
    budget = _RESIDUE_BUDGET_FACTOR * m + (1 << 16)
    chunk = max(1, _CHUNK_ELEMS // window)

    # Rows whose whole gap fits in one window: one masked pass, exact.
    exact_idx = np.nonzero(gaps <= window)[0]
    for lo in range(0, len(exact_idx), chunk):
        sel = exact_idx[lo : lo + chunk]
        r = rows[sel]
        gg = gaps[sel]
        within = cols[None, :] < gg[:, None]
        j = r[:, None] - 1 - cols[None, :]
        np.maximum(j, 0, out=j)  # masked entries only; keep the gather legal
        distinct = ((nextpos[j] >= p[sel, None]) & within).sum(axis=1)
        hit_out[sel] = distinct < assoc

    # Rows with wider gaps: every window column is a valid gap row (no
    # mask, no clipping), and a partial count >= assoc already proves a
    # miss; survivors carry their count into the backward residue scan.
    big_idx = np.nonzero(gaps > window)[0]
    residue_idx: List[np.ndarray] = []
    residue_acc: List[np.ndarray] = []
    for lo in range(0, len(big_idx), chunk):
        sel = big_idx[lo : lo + chunk]
        r = rows[sel]
        j = r[:, None] - 1 - cols[None, :]
        distinct = (nextpos[j] >= p[sel, None]).sum(axis=1)
        unresolved = distinct < assoc
        if unresolved.any():
            residue_idx.append(sel[unresolved])
            residue_acc.append(distinct[unresolved])

    if residue_idx:
        # Batched whole-gap pass: instead of marching every surviving row
        # forward one fixed-width window per iteration (whose iteration
        # count is set by the *longest* gap), gather each row's remaining
        # gap columns in one flat ragged pass — row ids repeated per
        # remaining column, per-row totals via one segmented reduceat —
        # chunked so a single gather stays within ``_CHUNK_ELEMS``.
        # Survivors of the first full-window pass carry fewer than
        # ``assoc`` distinct blocks in their nearest ``window`` columns,
        # so their gaps are overwhelmingly repeat-dominated and scanning
        # them outright is cheaper than windowed early exit.  The budget
        # check still precedes any scan work: a pathological stream aborts
        # to the serial loop before state is touched, exactly as before.
        idx = np.concatenate(residue_idx)
        acc = np.concatenate(residue_acc)
        remaining = gaps[idx].astype(np.int64) - window
        budget -= int(remaining.sum())
        if budget < 0:
            return None
        bounds = np.zeros(len(idx) + 1, dtype=np.int64)
        np.cumsum(remaining, out=bounds[1:])
        r = rows[idx]
        pv = p[idx]
        total_rows = len(idx)
        start_row = 0
        while start_row < total_rows:
            end_row = (
                int(
                    np.searchsorted(
                        bounds,
                        bounds[start_row] + _CHUNK_ELEMS,
                        side="right",
                    )
                )
                - 1
            )
            end_row = min(max(end_row, start_row + 1), total_rows)
            seg = slice(start_row, end_row)
            seg_bounds = bounds[start_row : end_row + 1] - bounds[start_row]
            repeat = np.repeat(
                np.arange(end_row - start_row, dtype=np.int64),
                remaining[seg],
            )
            col = (
                np.arange(int(seg_bounds[-1]), dtype=np.int64)
                - seg_bounds[repeat]
                + window
            )
            j = r[seg][repeat] - 1 - col
            last = (nextpos[j] >= pv[seg][repeat]).astype(np.int64)
            counts = acc[seg] + np.add.reduceat(last, seg_bounds[:-1])
            hit_out[idx[seg]] = counts < assoc
            start_row = end_row
    return hit_out
