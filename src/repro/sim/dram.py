"""Off-chip memory timing: bandwidth pools shared by active components."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from repro.config.components import MemoryConfig
from repro.config.system import SystemConfig, SystemKind
from repro.sim.hierarchy import Component


@dataclass(frozen=True)
class BandwidthShare:
    """Effective bandwidth available to one component at a point in time."""

    pool: str
    bytes_per_second: float


class MemorySystem:
    """Maps components to memory pools and arbitrates shared bandwidth.

    Discrete system: CPU traffic uses the DDR3 pool, GPU traffic the GDDR5
    pool; the copy engine is bound by the PCIe link (modelled separately)
    but also consumes both pools.  Heterogeneous processor: everything
    shares the single GDDR5 pool.
    """

    def __init__(self, system: SystemConfig):
        self.system = system

    def pool_of(self, component: Component) -> MemoryConfig:
        if self.system.kind is SystemKind.HETEROGENEOUS:
            return self.system.gpu_memory
        if component is Component.CPU:
            return self.system.cpu_memory
        return self.system.gpu_memory

    def _sharers(self, component: Component, active: FrozenSet[Component]) -> int:
        """Number of active components (incl. ``component``) on its pool."""
        pool = self.pool_of(component)
        count = 0
        for other in set(active) | {component}:
            other_pool = self.pool_of(other)
            if other_pool is pool or other_pool.name == pool.name:
                count += 1
        return max(1, count)

    def effective_bandwidth(
        self, component: Component, active: FrozenSet[Component]
    ) -> BandwidthShare:
        """Achievable bandwidth for ``component`` given who else is active.

        Bandwidth is split evenly among concurrently active components on the
        same pool — a deliberately simple arbitration model; the paper notes
        that CPU/GPU contention effects are marginal compared to the
        application-level differences being studied.
        """
        pool = self.pool_of(component)
        share = pool.achievable_bandwidth / self._sharers(component, active)
        return BandwidthShare(pool=pool.name, bytes_per_second=share)
