"""Analytic stage-duration model.

A stage's service time is the larger of its compute time and its off-chip
bandwidth time, plus a latency-sensitivity term that matters mostly for CPU
stages (the paper: "CPU cores tend to be more sensitive to memory access
latency than GPU cores", citing its ref [14]) and a page-fault service term
on the heterogeneous processor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import SystemConfig
from repro.pipeline.patterns import LATENCY_BOUND_PATTERNS
from repro.pipeline.stage import Stage, StageKind
from repro.sim.dram import BandwidthShare
from repro.sim.hierarchy import DomainResult
from repro.units import NANOSECONDS

#: Latency of an on-chip cache-to-cache transfer (heterogeneous processor).
ONCHIP_TRANSFER_LATENCY_S = 30 * NANOSECONDS

#: Memory-level parallelism of a serially dependent (pointer-chasing) walk.
POINTER_CHASE_MLP = 1.5

#: Outstanding misses a fully occupied GPU core complex can sustain (16
#: cores x 48 warps give hundreds of in-flight requests).
GPU_BASE_MLP = 256.0


@dataclass(frozen=True)
class StageTiming:
    """Component times for one stage execution."""

    compute_s: float
    memory_s: float
    latency_s: float
    fault_s: float = 0.0

    @property
    def duration_s(self) -> float:
        """Service time: overlapped compute/bandwidth, serialized latency.

        Compute and streaming memory traffic overlap (both core types cover
        bandwidth time with useful work), but serially exposed miss latency
        and page-fault service do not.
        """
        return max(self.compute_s, self.memory_s) + self.latency_s + self.fault_s


def _stage_mlp(stage: Stage, system: SystemConfig) -> float:
    latency_bound = any(
        access.pattern in LATENCY_BOUND_PATTERNS for access in stage.accesses
    )
    if stage.kind is StageKind.CPU:
        if latency_bound:
            return POINTER_CHASE_MLP
        return system.cpu.memory_level_parallelism
    # GPU: thousands of threads hide latency in proportion to occupancy.
    base = GPU_BASE_MLP * stage.occupancy
    if latency_bound:
        base = base / 8.0
    return max(base, 1.0)


def compute_stage_timing(
    stage: Stage,
    system: SystemConfig,
    mem: DomainResult,
    bandwidth: BandwidthShare,
    line_bytes: int,
    fault_service_s: float = 0.0,
) -> StageTiming:
    """Duration model for a CPU or GPU stage (copies are timed separately)."""
    if stage.kind is StageKind.COPY:
        raise ValueError("use CopyEngine for copy stages")

    if stage.kind is StageKind.CPU:
        peak = system.cpu.peak_flops
        miss_latency = system.cpu.miss_latency_s
    else:
        peak = system.gpu.peak_flops
        # GPU cores see the same memory but their pipelines absorb latency;
        # the base miss latency is similar in magnitude.
        miss_latency = system.cpu.miss_latency_s

    rate = peak * stage.occupancy * stage.compute_efficiency
    compute_s = stage.flops / rate if stage.flops else 0.0

    offchip_bytes = (mem.offchip_reads + mem.offchip_writes) * line_bytes
    memory_s = offchip_bytes / bandwidth.bytes_per_second if offchip_bytes else 0.0

    mlp = _stage_mlp(stage, system)
    latency_s = (
        mem.offchip_reads * miss_latency / mlp
        + mem.onchip_transfers * ONCHIP_TRANSFER_LATENCY_S / mlp
    )

    return StageTiming(
        compute_s=compute_s,
        memory_s=memory_s,
        latency_s=latency_s,
        fault_s=fault_service_s,
    )
