"""PCIe copy-engine timing (discrete system) and in-memory copy timing
(residual copies on the heterogeneous processor)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.system import SystemConfig, SystemKind


@dataclass(frozen=True)
class CopyTiming:
    """Time to execute one copy stage."""

    launch_s: float
    transfer_s: float

    @property
    def total_s(self) -> float:
        return self.launch_s + self.transfer_s


class CopyEngine:
    """Times copy stages for either system organization.

    Discrete: transfers cross the PCIe link, whose bandwidth (8 GB/s peak) is
    far below either memory's — the asymmetry that drives the paper's
    baseline results.  Heterogeneous: a residual copy is a memory-to-memory
    move within the shared pool, paying a read plus a write of every byte.
    """

    def __init__(self, system: SystemConfig):
        self.system = system

    def copy_time(self, num_bytes: float, bandwidth_share: float = 1.0) -> CopyTiming:
        if num_bytes < 0:
            raise ValueError("copy size must be non-negative")
        if self.system.kind is SystemKind.DISCRETE:
            pcie = self.system.pcie
            assert pcie is not None
            transfer = num_bytes / pcie.achievable_bandwidth
            return CopyTiming(launch_s=pcie.copy_launch_latency_s, transfer_s=transfer)
        pool = self.system.gpu_memory
        bandwidth = pool.achievable_bandwidth * bandwidth_share
        # Read + write of every byte through the same channels.
        transfer = 2.0 * num_bytes / bandwidth
        return CopyTiming(
            launch_s=self.system.kernel_launch_latency_s, transfer_s=transfer
        )
