"""Row-buffer-aware DRAM efficiency model.

The base memory model uses the paper's flat "~82% of pin bandwidth"
efficiency.  This optional refinement derives a stream-specific efficiency
from row-buffer locality: sequential sweeps keep DRAM rows open (high
efficiency), while random graph traversals pay a row activation on almost
every access (low efficiency).  Enable it with
``SimOptions(dram_row_model=True)``; the flat model remains the calibrated
default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default DRAM row size (GDDR5-class, 2KB rows = 16 x 128B lines).
ROW_BYTES = 2048

#: Efficiency at perfect row locality (streaming) and at none (random).
SEQUENTIAL_EFFICIENCY = 0.93
RANDOM_EFFICIENCY = 0.55


@dataclass(frozen=True)
class RowBufferStats:
    """Row locality of one access stream at the off-chip interface."""

    accesses: int
    row_hits: int

    @property
    def hit_fraction(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 1.0


def row_buffer_stats(
    blocks: np.ndarray, line_bytes: int = 128, row_bytes: int = ROW_BYTES
) -> RowBufferStats:
    """Count per-bank open-row hits for a block stream.

    A simplified single-open-row-per-bank model with banks interleaved at
    row granularity: an access hits when the previous access to its bank
    touched the same row.  With row-granularity interleaving that reduces
    to comparing consecutive accesses' row ids per bank; we approximate
    banks as fully pipelined and compare against the immediately preceding
    access's row — pessimistic for banked interleaves, which is the safe
    direction for a bandwidth model.
    """
    if row_bytes % line_bytes:
        raise ValueError("row size must be a multiple of the line size")
    n = len(blocks)
    if n <= 1:
        return RowBufferStats(accesses=n, row_hits=max(0, n - 1))
    lines_per_row = row_bytes // line_bytes
    rows = np.asarray(blocks, dtype=np.int64) // lines_per_row
    hits = int((rows[1:] == rows[:-1]).sum())
    return RowBufferStats(accesses=n, row_hits=hits)


def effective_efficiency(
    stats: RowBufferStats,
    sequential: float = SEQUENTIAL_EFFICIENCY,
    random: float = RANDOM_EFFICIENCY,
) -> float:
    """Interpolate DRAM efficiency between the random and streaming poles."""
    if not 0.0 < random <= sequential <= 1.0:
        raise ValueError("need 0 < random <= sequential <= 1")
    return random + (sequential - random) * stats.hit_fraction


def stream_efficiency(
    blocks: np.ndarray, line_bytes: int = 128, row_bytes: int = ROW_BYTES
) -> float:
    """Convenience: row stats + interpolation in one call."""
    return effective_efficiency(row_buffer_stats(blocks, line_bytes, row_bytes))
