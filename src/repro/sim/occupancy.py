"""GPU occupancy calculation from kernel resource usage.

Table I's GPU cores manage up to 8 CTAs and 48 warps of 32 threads each,
with 32k registers and 48kB of scratch memory per core.  A kernel's
achievable occupancy — the fraction of the core's warp slots it can fill —
is limited by whichever of those four resources it exhausts first, exactly
like the CUDA occupancy calculator.

Stages may either declare an ``occupancy`` directly (the suite models do,
because the paper reports behaviour, not resource counts) or attach a
:class:`KernelResources` descriptor and let the engine derive it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.config.components import GpuConfig
from repro.pipeline.stage import KernelResources

__all__ = [
    "KernelResources",
    "OccupancyLimiter",
    "OccupancyReport",
    "compute_occupancy",
    "derive_stage_occupancy",
]


class OccupancyLimiter(enum.Enum):
    """Which per-core resource caps a kernel's concurrent CTAs."""

    CTA_SLOTS = "cta slots"
    WARP_SLOTS = "warp slots"
    REGISTERS = "registers"
    SCRATCH = "scratch memory"


@dataclass(frozen=True)
class OccupancyReport:
    """The occupancy calculation's full result."""

    concurrent_ctas: int
    active_warps: int
    warp_slots: int
    limiter: OccupancyLimiter

    @property
    def occupancy(self) -> float:
        """Fraction of the core's warp slots filled (0 when nothing fits)."""
        return self.active_warps / self.warp_slots if self.warp_slots else 0.0


def compute_occupancy(gpu: GpuConfig, resources: KernelResources) -> OccupancyReport:
    """Apply the four per-core limits and report the binding one."""
    warps_per_cta = -(-resources.threads_per_cta // gpu.threads_per_warp)

    by_cta_slots = gpu.max_ctas_per_core
    by_warp_slots = gpu.warps_per_core // warps_per_cta
    regs_per_cta = resources.registers_per_thread * resources.threads_per_cta
    by_registers = gpu.registers_per_core // regs_per_cta
    if resources.scratch_bytes_per_cta:
        by_scratch = gpu.scratch_bytes_per_core // resources.scratch_bytes_per_cta
    else:
        by_scratch = by_cta_slots  # scratch never binds

    limits = {
        OccupancyLimiter.CTA_SLOTS: by_cta_slots,
        OccupancyLimiter.WARP_SLOTS: by_warp_slots,
        OccupancyLimiter.REGISTERS: by_registers,
        OccupancyLimiter.SCRATCH: by_scratch,
    }
    # The binding limiter is the smallest; ties resolve in declaration order.
    limiter = min(limits, key=lambda k: limits[k])
    ctas = max(0, limits[limiter])
    active_warps = min(ctas * warps_per_cta, gpu.warps_per_core)
    return OccupancyReport(
        concurrent_ctas=ctas,
        active_warps=active_warps,
        warp_slots=gpu.warps_per_core,
        limiter=limiter,
    )


def derive_stage_occupancy(
    gpu: GpuConfig,
    resources: KernelResources,
    declared_occupancy: float = 1.0,
) -> float:
    """Occupancy the engine should use for a stage with known resources.

    The declared occupancy still applies as a ceiling: a kernel whose grid
    is too small to fill the machine (limited TLP) stays limited no matter
    how lean its resource usage is.
    """
    report = compute_occupancy(gpu, resources)
    derived = report.occupancy
    if derived <= 0.0:
        raise ValueError(
            f"kernel resources {resources} do not fit on a core "
            f"(limited by {report.limiter.value})"
        )
    return min(declared_occupancy, derived)
