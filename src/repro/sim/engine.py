"""Discrete-event execution engine.

Schedules pipeline stages onto the three components (CPU cores, GPU cores,
copy engine) honouring dependencies, single-server occupancy per component,
CPU-issued launch latency for kernels and copies, shared-pool bandwidth
arbitration, and (on the heterogeneous processor) CPU-handled GPU page
faults.  Stage memory behaviour is obtained by streaming each stage's
generated access trace through the cache system in start-time order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.config.system import SystemConfig, SystemKind
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import Stage, StageKind
from repro.sim.dram import MemorySystem
from repro.sim.hierarchy import CacheSystem, Component, DomainResult
from repro.sim.observe.events import (
    CTR_BW_SHARE,
    CTR_DRAM_READS,
    CTR_DRAM_WRITES,
    CTR_LINK_BYTES_IN,
    CTR_LINK_BYTES_OUT,
    CTR_ONCHIP_TRANSFERS,
    MARK_ROI_END,
    SPAN_FAULT,
    SPAN_LAUNCH,
    SPAN_STAGE,
    SRC_COPY,
    SRC_DRAIN,
    SRC_FLUSH,
    SRC_STAGE,
    SRC_ZERO,
    CounterEvent,
    MarkEvent,
    SpanEvent,
    TraceEvent,
)
from repro.sim.memo import (
    StageEntry,
    StageMemo,
    apply_stats_delta,
    shared_stage_memo,
    states_digest,
    stats_delta,
    stats_tuple,
)
from repro.sim.observe.sinks import TraceSink
from repro.sim.pagefault import PageFaultModel, premapped_pages
from repro.sim.pcie import CopyEngine
from repro.sim.results import Interval, SimResult, StageRecord
from repro.sim.timing import StageTiming, compute_stage_timing
from repro.trace.generator import TraceGenerator
from repro.trace.stream import AccessStream

_COMPONENT_OF_KIND = {
    StageKind.CPU: Component.CPU,
    StageKind.GPU_KERNEL: Component.GPU,
    StageKind.COPY: Component.COPY,
}

#: Version tag of the simulation semantics.  Persistently cached results
#: (:mod:`repro.sim.resultcache`) embed this tag in their content hash, so
#: bumping it invalidates every archived sweep at once.  Bump whenever a
#: change to the engine, trace generation, cache/DRAM/PCIe models, or the
#: workload pipeline builders alters simulation output for unchanged
#: (pipeline, system, options) inputs.
#: 2: SimResult grew the optional ``violations`` field (repro.sim.observe);
#:    simulation math is unchanged but the serialized form is richer.
ENGINE_VERSION = "repro-sim/2"

#: Process-wide memo of synthesized trace parts, shared by every ``fast``
#: engine instance (see :class:`repro.trace.generator.TraceGenerator`).
#: Keys fully determine the part's contents, so sharing across pipelines,
#: systems, and the copy/limited-copy pair is exact.
_TRACE_MEMO: dict = {}


@dataclass(frozen=True)
class SimOptions:
    """Knobs controlling a simulation run.

    Attributes:
        seed: trace-generation seed.
        scale: footprint/cache scale factor (see DESIGN.md); 1.0 is paper
            scale.  Applied to both the pipeline and the system caches so
            capacity ratios are preserved.
        line_bytes: cache line size (Table I: 128B).
        collect_log: keep the full off-chip log (needed for Fig. 9); can be
            disabled to save memory on very large runs.
        engine_impl: cache-simulation implementation — ``"fast"`` (the
            default: the vectorized engine of :mod:`repro.sim.fastcache`,
            plus per-stage trace memoization) or ``"reference"`` (the
            plain-Python model, selectable as the opt-out).  The two
            produce bit-identical SimResults (enforced by the differential
            test suite), so the persistent result cache is shared between
            them; the choice is purely a wall-clock trade-off measured by
            ``repro bench``.
        stage_memo: stage-level memoization (:mod:`repro.sim.memo`) —
            ``"auto"`` (the default) enables it exactly when
            ``engine_impl == "fast"``; ``"on"`` / ``"off"`` force it for
            either implementation.  Memoized runs are bit-exact with
            memo-off runs (timing and trace events are always recomputed
            live from the replayed counters), so like ``engine_impl`` the
            knob is excluded from result-cache keys.
    """

    seed: int = 0
    scale: float = 1.0
    line_bytes: int = 128
    collect_log: bool = True
    # Opt-in row-buffer-aware DRAM efficiency (see repro.sim.dram_row); the
    # calibrated default is the paper's flat ~82%-of-pin model.
    dram_row_model: bool = False
    engine_impl: str = "fast"
    stage_memo: str = "auto"


class Engine:
    """Executes one pipeline on one system configuration.

    ``sinks`` attaches trace sinks (:mod:`repro.sim.observe`): the engine
    emits typed span/counter events at its hook points (stage execution,
    bandwidth refinement, cache drains) and calls each sink's ``finish``
    with the completed result.  Tracing is observation-only — attaching
    sinks never changes the simulation outcome — and with no sinks the
    emission paths are skipped entirely.
    """

    def __init__(
        self,
        pipeline: Pipeline,
        system: SystemConfig,
        options: SimOptions,
        sinks: Sequence[TraceSink] = (),
    ):
        self.sinks: Tuple[TraceSink, ...] = tuple(sinks)
        self._tracing = bool(self.sinks)
        if options.scale != 1.0:
            pipeline = pipeline.scaled(options.scale)
            system = system.scaled(options.scale)
        self.pipeline = pipeline
        self.system = system
        self.options = options
        self.tracegen = TraceGenerator(
            pipeline,
            line_bytes=options.line_bytes,
            seed=options.seed,
            # The fast path memoizes per-access trace parts process-wide,
            # so the copy / limited-copy pair (and repeated stages within
            # one pipeline) synthesize each identical sub-stream once.
            memo=_TRACE_MEMO if options.engine_impl == "fast" else None,
        )
        coherent = system.kind is SystemKind.HETEROGENEOUS
        self.caches = CacheSystem(
            cpu_l1=system.cpu.l1d,
            cpu_l2=self._aggregate_cpu_l2(),
            gpu_l1=self._aggregate_gpu_l1(),
            gpu_l2=system.gpu.l2,
            coherent=coherent,
            impl=options.engine_impl,
        )
        if options.stage_memo not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown stage_memo {options.stage_memo!r}; "
                "choose from 'auto', 'on', 'off'"
            )
        # Stage-level memoization (repro.sim.memo): process-wide, shared
        # across engine instances, systems, and the copy / limited-copy
        # pair.  "auto" follows the engine impl so the reference engine
        # stays a memo-free baseline by default.
        use_stage_memo = options.stage_memo == "on" or (
            options.stage_memo == "auto" and options.engine_impl == "fast"
        )
        self.stage_memo: Optional[StageMemo] = (
            shared_stage_memo() if use_stage_memo else None
        )
        self.memory = MemorySystem(system)
        self.copy_engine = CopyEngine(system)
        self.faults: Optional[PageFaultModel] = None
        if coherent and system.page_faults.enabled:
            self.faults = PageFaultModel(
                config=system.page_faults,
                layout=self.tracegen.layout,
                mapped=premapped_pages(pipeline, self.tracegen.layout),
                serialization_heavy=bool(
                    pipeline.metadata.get("pagefault_heavy", False)
                ),
            )

    def _aggregate_cpu_l2(self):
        """The four private 256kB L2s modelled as one 1MB pool."""
        cfg = self.system.cpu.l2
        from dataclasses import replace

        return replace(
            cfg, capacity_bytes=cfg.capacity_bytes * self.system.cpu.num_cores
        )

    def _aggregate_gpu_l1(self):
        """Sixteen 24kB GPU L1s modelled as one 384kB pool."""
        cfg = self.system.gpu.l1
        from dataclasses import replace

        return replace(
            cfg, capacity_bytes=cfg.capacity_bytes * self.system.gpu.num_cores
        )

    # -- tracing ---------------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- stage memoization -----------------------------------------------------
    #
    # Each stage's *memory step* — the page-fault touch, the stream's trip
    # through the cache hierarchy, and the off-chip log appends it produces
    # — is a pure function of (access stream, cache configs, incoming
    # cache state, page-table state).  The helpers below key it by exactly
    # those inputs and replay the recorded outcome on a repeat; timing,
    # scheduling, and trace events are cheap arithmetic over the replayed
    # counters and always run live, which keeps memoized runs bit-exact
    # with memo-off runs.  See repro.sim.memo.

    def _memo_caches(self, component: Optional[Component]) -> tuple:
        """The caches one memory step can read or mutate, in fixed order."""
        if component is None:  # copy / drain: both domains, both levels
            return (
                self.caches.cpu.l1,
                self.caches.cpu.l2,
                self.caches.gpu.l1,
                self.caches.gpu.l2,
            )
        domain = self.caches.domain_for(component)
        involved = [domain.l1, domain.l2]
        peer = self.caches.peer_of(component)
        if peer is not None:
            involved += [peer.l1, peer.l2]
        return tuple(involved)

    def _memo_key(
        self, tag: tuple, stream_key: Optional[tuple], involved: tuple,
        with_faults: bool,
    ) -> tuple:
        # ENGINE_VERSION is read dynamically (module global) so a version
        # bump invalidates live stage memos exactly like the result cache.
        fault_key = None
        if with_faults and self.faults is not None:
            fault_key = (
                self.faults.config,
                self.faults.serialization_heavy,
                self.faults.layout.blocks_per_page,
            ) + self.faults.state_key()
        return (
            ENGINE_VERSION,
            tag,
            stream_key,
            self.options.line_bytes,
            self.caches.coherent,
            tuple(cache.config for cache in involved),
            fault_key,
            states_digest([cache.state_arrays() for cache in involved]),
        )

    def _memo_record(
        self,
        key: tuple,
        involved: tuple,
        before_stats: list,
        mark: int,
        mem: Optional[DomainResult] = None,
        fault: Optional[tuple] = None,
        aux: tuple = (),
    ) -> None:
        assert self.stage_memo is not None
        self.stage_memo.store(
            key,
            StageEntry(
                log_parts=self.caches.log.parts_since(mark),
                mem=None
                if mem is None
                else (
                    mem.requests,
                    mem.offchip_reads,
                    mem.offchip_writes,
                    mem.onchip_transfers,
                    mem.offchip_blocks,
                ),
                fault=fault,
                cache_states=tuple(c.state_arrays() for c in involved),
                stats_deltas=tuple(
                    stats_delta(before, stats_tuple(cache))
                    for before, cache in zip(before_stats, involved)
                ),
                aux=aux,
            ),
        )

    def _memo_replay(
        self, entry: StageEntry, involved: tuple, ordinal: int
    ) -> Optional[DomainResult]:
        self.caches.log.replay(entry.log_parts, ordinal)
        for cache, state, delta in zip(
            involved, entry.cache_states, entry.stats_deltas
        ):
            cache.restore_state(state)
            apply_stats_delta(cache, delta)
        if entry.fault is not None and self.faults is not None:
            self.faults.replay(entry.fault[3])
        if entry.mem is None:
            return None
        return DomainResult(*entry.mem)

    def _compute_memory_live(
        self,
        stage: Stage,
        stream: AccessStream,
        component: Component,
        ordinal: int,
    ) -> Tuple[DomainResult, Optional[tuple]]:
        """One compute stage's memory step; returns (mem, fault tuple)."""
        fault_tuple: Optional[tuple] = None
        if self.faults is not None and len(stream):
            fault = self.faults.touch(stream.blocks, stage.kind)
            zeroed = fault.zeroed_blocks
            if len(zeroed) and self.system.page_faults.enabled:
                # The CPU zeroes newly mapped pages; attribute the writes to
                # the CPU component (the srad access-shifting effect).
                # Zeroing traffic counts as CPU memory accesses but not as
                # core-touched footprint.
                self.caches.log.append(
                    zeroed,
                    np.ones(len(zeroed), dtype=bool),
                    ordinal,
                    Component.CPU,
                )
                bpp = self.faults.layout.blocks_per_page
                new_pages = (zeroed[::bpp] // bpp).astype(np.int64)
            else:
                new_pages = np.empty(0, dtype=np.int64)
            fault_tuple = (
                fault.faults,
                fault.service_time_s,
                zeroed,
                new_pages,
            )
        mem = self.caches.process_compute(stream, ordinal, component)
        return mem, fault_tuple

    def _compute_memory_step(
        self,
        stage: Stage,
        stream: AccessStream,
        component: Component,
        ordinal: int,
    ) -> Tuple[DomainResult, float, int, int]:
        """Memoized compute memory step.

        Returns (mem, fault service seconds, fault count, zeroed blocks).
        """
        memo = self.stage_memo
        if memo is None or not len(stream):
            mem, fault_tuple = self._compute_memory_live(
                stage, stream, component, ordinal
            )
        else:
            involved = self._memo_caches(component)
            key = self._memo_key(
                ("compute", component.value),
                self.tracegen._stage_key(stage),
                involved,
                with_faults=True,
            )
            entry = memo.lookup(key)
            if entry is not None:
                mem = self._memo_replay(entry, involved, ordinal)
                fault_tuple = entry.fault
            else:
                mark = self.caches.log.mark()
                before = [stats_tuple(cache) for cache in involved]
                mem, fault_tuple = self._compute_memory_live(
                    stage, stream, component, ordinal
                )
                self._memo_record(
                    key, involved, before, mark, mem=mem, fault=fault_tuple
                )
        if fault_tuple is None:
            return mem, 0.0, 0, 0
        return mem, fault_tuple[1], fault_tuple[0], len(fault_tuple[2])

    def _copy_memory_step(
        self,
        stage: Stage,
        src_blocks: np.ndarray,
        dst_blocks: np.ndarray,
        ordinal: int,
    ) -> DomainResult:
        """Memoized copy (DMA) memory step."""
        memo = self.stage_memo
        if memo is None or not (len(src_blocks) + len(dst_blocks)):
            return self.caches.process_copy(src_blocks, dst_blocks, ordinal)
        involved = self._memo_caches(None)
        key = self._memo_key(
            ("copy",),
            self.tracegen._stage_key(stage),
            involved,
            with_faults=False,
        )
        entry = memo.lookup(key)
        if entry is not None:
            mem = self._memo_replay(entry, involved, ordinal)
            assert mem is not None
            return mem
        mark = self.caches.log.mark()
        before = [stats_tuple(cache) for cache in involved]
        mem = self.caches.process_copy(src_blocks, dst_blocks, ordinal)
        self._memo_record(key, involved, before, mark, mem=mem)
        return mem

    # -- scheduling ------------------------------------------------------------

    def run(self) -> SimResult:
        order = self.pipeline.topological_order()
        pending: List[Stage] = list(order)
        completed: Dict[str, float] = {}
        comp_free: Dict[Component, float] = {c: 0.0 for c in Component}
        busy: Dict[Component, List[Interval]] = {c: [] for c in Component}
        launch_intervals: List[Interval] = []
        records: List[StageRecord] = []
        touched: Dict[Component, List[np.ndarray]] = {c: [] for c in Component}
        flops_by_component: Dict[Component, float] = {c: 0.0 for c in Component}
        logical_index: Dict[str, int] = {}
        logical_of_ordinal: List[int] = []

        launch_latency = self.system.kernel_launch_latency_s
        ordinal = 0

        while pending:
            # Earliest-start list scheduling: among dependency-ready stages,
            # run the one whose execution can begin first.
            best: Optional[Tuple[float, float, int, Stage]] = None
            for idx, stage in enumerate(pending):
                if any(dep not in completed for dep in stage.depends_on):
                    continue
                ready = max(
                    (completed[dep] for dep in stage.depends_on), default=0.0
                )
                component = _COMPONENT_OF_KIND[stage.kind]
                if stage.kind is StageKind.CPU:
                    start = max(ready, comp_free[Component.CPU])
                    launch_start = start
                elif stage.device_launched:
                    # Dynamic parallelism: no CPU involvement; the (higher)
                    # device launch latency precedes execution.
                    launch_start = ready
                    start = max(
                        ready + self.system.device_launch_latency_s,
                        comp_free[component],
                    )
                else:
                    launch_start = ready
                    start = max(ready + launch_latency, comp_free[component])
                key = (start, launch_start, idx)
                if best is None or key < (best[0], best[1], best[2]):
                    best = (start, launch_start, idx, stage)
            if best is None:
                raise RuntimeError(
                    f"deadlock scheduling pipeline {self.pipeline.name!r}"
                )
            start, launch_start, idx, stage = best
            pending.pop(idx)
            component = _COMPONENT_OF_KIND[stage.kind]

            if stage.kind is not StageKind.CPU and not stage.device_launched:
                sliver = Interval(launch_start, launch_start + launch_latency)
                launch_intervals.append(sliver)
                busy[Component.CPU].append(sliver)
                if self._tracing:
                    self._emit(
                        SpanEvent(
                            category=SPAN_LAUNCH,
                            name=f"launch:{stage.name}",
                            component=Component.CPU.value,
                            start_s=sliver.start,
                            end_s=sliver.end,
                            ordinal=ordinal,
                        )
                    )

            active = frozenset(
                comp
                for comp, intervals in busy.items()
                if any(iv.start <= start < iv.end for iv in intervals)
            )
            record = self._execute(
                stage, component, start, active, ordinal, busy, touched
            )
            records.append(record)
            completed[stage.name] = record.end_s
            comp_free[component] = max(comp_free[component], record.end_s)
            busy[component].append(Interval(record.start_s, record.end_s))
            flops_by_component[component] += stage.flops
            if stage.logical_name not in logical_index:
                logical_index[stage.logical_name] = len(logical_index)
            logical_of_ordinal.append(logical_index[stage.logical_name])
            ordinal += 1

        roi = max((r.end_s for r in records), default=0.0)
        self._drain_caches(ordinal, roi)
        if self._tracing:
            self._emit(MarkEvent(name=MARK_ROI_END, t_s=roi))

        blocks, is_write, stage_arr, comp_arr = self.caches.log.arrays()
        if not self.options.collect_log:
            blocks = blocks[:0]
            is_write = is_write[:0]
            stage_arr = stage_arr[:0]
            comp_arr = comp_arr[:0]
        touched_final = {
            comp: (np.unique(np.concatenate(parts)) if parts else np.empty(0, np.int64))
            for comp, parts in touched.items()
        }
        # Drain writebacks belong to the final logical stage for distance math.
        logical_of_ordinal.append(
            logical_of_ordinal[-1] if logical_of_ordinal else 0
        )

        result = SimResult(
            pipeline_name=self.pipeline.name,
            system_kind=self.system.kind.value,
            roi_s=roi,
            stages=tuple(records),
            busy=busy,
            launch_intervals=launch_intervals,
            line_bytes=self.options.line_bytes,
            log_blocks=blocks,
            log_is_write=is_write,
            log_stage=stage_arr,
            log_component=comp_arr,
            logical_of_ordinal=np.asarray(logical_of_ordinal, dtype=np.int32),
            touched_blocks=touched_final,
            total_flops=self.pipeline.total_flops,
            flops_by_component=flops_by_component,
        )
        # Let every sink see the finished run; monitors check their
        # conservation laws here ("raise" mode propagates from finish).
        for sink in self.sinks:
            sink.finish(result)
        violations = tuple(
            violation
            for sink in self.sinks
            for violation in getattr(sink, "violations", ())
        )
        if violations:
            result.violations = violations
        return result

    # -- per-stage execution ------------------------------------------------------

    def _execute(
        self,
        stage: Stage,
        component: Component,
        start: float,
        active: frozenset,
        ordinal: int,
        busy: Dict[Component, List[Interval]],
        touched: Dict[Component, List[np.ndarray]],
    ) -> StageRecord:
        trace = self.tracegen.stage_trace(stage)
        stream = trace.stream
        if len(stream):
            touched[component].append(trace.unique_ids)

        if stage.kind is StageKind.COPY:
            src_blocks = stream.blocks[~stream.is_write]
            dst_blocks = stream.blocks[stream.is_write]
            mem = self._copy_memory_step(stage, src_blocks, dst_blocks, ordinal)
            share = self.memory.effective_bandwidth(component, active)
            pool_fraction = share.bytes_per_second / max(
                self.memory.pool_of(component).achievable_bandwidth, 1e-30
            )
            timing_copy = self.copy_engine.copy_time(
                len(src_blocks) * self.options.line_bytes, bandwidth_share=pool_fraction
            )
            timing = StageTiming(
                compute_s=0.0, memory_s=timing_copy.transfer_s, latency_s=0.0
            )
            end = start + timing_copy.transfer_s
            if self._tracing:
                flushed = mem.offchip_writes - len(dst_blocks)
                line_bytes = self.options.line_bytes
                self._emit(
                    SpanEvent(
                        category=SPAN_STAGE,
                        name=stage.name,
                        component=component.value,
                        start_s=start,
                        end_s=end,
                        ordinal=ordinal,
                        args={"kind": stage.kind.value, "logical": stage.logical_name},
                    )
                )
                self._emit(
                    CounterEvent(
                        name=CTR_BW_SHARE,
                        component=component.value,
                        t_s=start,
                        value=share.bytes_per_second,
                        ordinal=ordinal,
                        args={"pool": share.pool},
                    )
                )
                self._emit(
                    CounterEvent(
                        name=CTR_LINK_BYTES_IN,
                        component=component.value,
                        t_s=start,
                        value=len(src_blocks) * line_bytes,
                        ordinal=ordinal,
                    )
                )
                self._emit(
                    CounterEvent(
                        name=CTR_LINK_BYTES_OUT,
                        component=component.value,
                        t_s=end,
                        value=len(dst_blocks) * line_bytes,
                        ordinal=ordinal,
                    )
                )
                self._emit(
                    CounterEvent(
                        name=CTR_DRAM_READS,
                        component=component.value,
                        t_s=start,
                        value=len(src_blocks),
                        ordinal=ordinal,
                        source=SRC_COPY,
                    )
                )
                self._emit(
                    CounterEvent(
                        name=CTR_DRAM_WRITES,
                        component=component.value,
                        t_s=end,
                        value=len(dst_blocks),
                        ordinal=ordinal,
                        source=SRC_COPY,
                    )
                )
                if flushed:
                    self._emit(
                        CounterEvent(
                            name=CTR_DRAM_WRITES,
                            component=component.value,
                            t_s=start,
                            value=flushed,
                            ordinal=ordinal,
                            source=SRC_FLUSH,
                        )
                    )
            return StageRecord(
                name=stage.name,
                logical=stage.logical_name,
                kind=stage.kind,
                component=component,
                ordinal=ordinal,
                start_s=start,
                end_s=end,
                timing=timing,
                requests=mem.requests,
                offchip_reads=mem.offchip_reads,
                offchip_writes=mem.offchip_writes,
                onchip_transfers=0,
                faults=0,
                flops=0.0,
            )

        mem, fault_service, fault_count, zeroed_count = self._compute_memory_step(
            stage, stream, component, ordinal
        )
        share = self.memory.effective_bandwidth(component, active)
        share = self._refine_bandwidth(share, component, mem, ordinal, start)
        if stage.kind is StageKind.GPU_KERNEL and stage.resources is not None:
            from dataclasses import replace as _replace

            from repro.sim.occupancy import derive_stage_occupancy

            stage = _replace(
                stage,
                occupancy=derive_stage_occupancy(
                    self.system.gpu, stage.resources, stage.occupancy
                ),
            )
        timing = compute_stage_timing(
            stage,
            self.system,
            mem,
            share,
            self.options.line_bytes,
            fault_service_s=fault_service,
        )
        end = start + timing.duration_s
        if fault_service > 0.0:
            # The CPU is busy servicing faults while the kernel runs.
            busy[Component.CPU].append(Interval(start, start + fault_service))
            if self._tracing:
                self._emit(
                    SpanEvent(
                        category=SPAN_FAULT,
                        name=f"fault:{stage.name}",
                        component=Component.CPU.value,
                        start_s=start,
                        end_s=start + fault_service,
                        ordinal=ordinal,
                        args={"faults": fault_count},
                    )
                )
        if self._tracing:
            self._emit(
                SpanEvent(
                    category=SPAN_STAGE,
                    name=stage.name,
                    component=component.value,
                    start_s=start,
                    end_s=end,
                    ordinal=ordinal,
                    args={"kind": stage.kind.value, "logical": stage.logical_name},
                )
            )
            if mem.offchip_reads:
                self._emit(
                    CounterEvent(
                        name=CTR_DRAM_READS,
                        component=component.value,
                        t_s=start,
                        value=mem.offchip_reads,
                        ordinal=ordinal,
                        source=SRC_STAGE,
                    )
                )
            if mem.offchip_writes:
                self._emit(
                    CounterEvent(
                        name=CTR_DRAM_WRITES,
                        component=component.value,
                        t_s=end,
                        value=mem.offchip_writes,
                        ordinal=ordinal,
                        source=SRC_STAGE,
                    )
                )
            if mem.onchip_transfers:
                self._emit(
                    CounterEvent(
                        name=CTR_ONCHIP_TRANSFERS,
                        component=component.value,
                        t_s=start,
                        value=mem.onchip_transfers,
                        ordinal=ordinal,
                    )
                )
            if zeroed_count:
                self._emit(
                    CounterEvent(
                        name=CTR_DRAM_WRITES,
                        component=Component.CPU.value,
                        t_s=start,
                        value=zeroed_count,
                        ordinal=ordinal,
                        source=SRC_ZERO,
                    )
                )
        return StageRecord(
            name=stage.name,
            logical=stage.logical_name,
            kind=stage.kind,
            component=component,
            ordinal=ordinal,
            start_s=start,
            end_s=end,
            timing=timing,
            requests=mem.requests,
            offchip_reads=mem.offchip_reads,
            offchip_writes=mem.offchip_writes,
            onchip_transfers=mem.onchip_transfers,
            faults=fault_count,
            flops=stage.flops,
        )

    def _refine_bandwidth(self, share, component, mem, ordinal=-1, t_s=0.0):
        """Apply the optional row-buffer DRAM efficiency refinement.

        Also a tracing hook point: the bandwidth share each compute stage
        is granted (refined or not) is emitted as a ``bw.share`` counter.
        """
        refined = share
        if self.options.dram_row_model and (
            mem.offchip_blocks is not None and len(mem.offchip_blocks)
        ):
            from repro.sim.dram import BandwidthShare
            from repro.sim.dram_row import stream_efficiency

            pool = self.memory.pool_of(component)
            ratio = (
                stream_efficiency(
                    mem.offchip_blocks, line_bytes=self.options.line_bytes
                )
                / pool.efficiency
            )
            refined = BandwidthShare(
                pool=share.pool, bytes_per_second=share.bytes_per_second * ratio
            )
        if self._tracing:
            self._emit(
                CounterEvent(
                    name=CTR_BW_SHARE,
                    component=component.value,
                    t_s=t_s,
                    value=refined.bytes_per_second,
                    ordinal=ordinal,
                    args={"pool": refined.pool, "raw": share.bytes_per_second},
                )
            )
        return refined

    def _drain_caches(self, ordinal: int, roi_s: float = 0.0) -> None:
        """Flush dirty lines at ROI end so final writes reach the log.

        Memoized like any other memory step (keyed purely by cache state;
        the per-cache writeback arrays ride along as the entry's ``aux``
        so trace events can be re-emitted live).  Tracing hook point: each
        cache's drain volume is emitted as a ``dram.writes`` counter with
        source ``drain`` at ``t == roi_s``.
        """
        pairs = (
            (self.caches.cpu.l1, Component.CPU),
            (self.caches.cpu.l2, Component.CPU),
            (self.caches.gpu.l1, Component.GPU),
            (self.caches.gpu.l2, Component.GPU),
        )
        memo = self.stage_memo
        if memo is None:
            written_per_cache = self._drain_live(pairs, ordinal)
        else:
            involved = tuple(cache for cache, _ in pairs)
            key = self._memo_key(("drain",), None, involved, with_faults=False)
            entry = memo.lookup(key)
            if entry is not None:
                self._memo_replay(entry, involved, ordinal)
                written_per_cache = list(entry.aux)
            else:
                mark = self.caches.log.mark()
                before = [stats_tuple(cache) for cache in involved]
                written_per_cache = self._drain_live(pairs, ordinal)
                self._memo_record(
                    key, involved, before, mark, aux=tuple(written_per_cache)
                )
        if self._tracing:
            for (cache, comp), written in zip(pairs, written_per_cache):
                if len(written):
                    self._emit(
                        CounterEvent(
                            name=CTR_DRAM_WRITES,
                            component=comp.value,
                            t_s=roi_s,
                            value=len(written),
                            ordinal=ordinal,
                            source=SRC_DRAIN,
                            args={"cache": cache.name},
                        )
                    )

    def _drain_live(self, pairs: tuple, ordinal: int) -> list:
        written_per_cache = []
        for cache, comp in pairs:
            arr = np.asarray(cache.drain(), dtype=np.int64)
            if len(arr):
                self.caches.log.append(
                    arr, np.ones(len(arr), dtype=bool), ordinal, comp
                )
            written_per_cache.append(arr)
        return written_per_cache


def simulate(
    pipeline: Pipeline,
    system: SystemConfig,
    options: Optional[SimOptions] = None,
    sinks: Sequence[TraceSink] = (),
) -> SimResult:
    """Simulate ``pipeline`` on ``system``; the library's main entry point.

    ``sinks`` attaches trace sinks from :mod:`repro.sim.observe`
    (recorders, exporters, the invariant monitor); tracing is
    observation-only and the default (no sinks) adds no overhead.
    """
    return Engine(pipeline, system, options or SimOptions(), sinks=sinks).run()
