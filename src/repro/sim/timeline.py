"""ASCII timeline rendering of simulation results.

Renders the Fig. 3/6-style component-activity view as a Gantt chart::

    copy  |==== =  =  =                      |
    cpu   |    =  = == =                     |
    gpu   |      ====   =====================|

so users can eyeball where the bulk-synchronous serialization and the
overlap opportunities live.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.sim.hierarchy import Component
from repro.sim.results import Interval, SimResult, merge_intervals

#: Render order for the component lanes.
LANE_ORDER = (Component.COPY, Component.CPU, Component.GPU)


def _lane(intervals: Sequence[Interval], roi_s: float, width: int) -> str:
    cells = [" "] * width
    if roi_s <= 0:
        return "".join(cells)
    for interval in merge_intervals(list(intervals)):
        lo = int(interval.start / roi_s * width)
        hi = int(interval.end / roi_s * width)
        hi = max(hi, lo + 1)  # always visible
        for i in range(lo, min(hi, width)):
            cells[i] = "="
    return "".join(cells)


def render_timeline(result: SimResult, width: int = 72) -> str:
    """Render the run's component activity as an ASCII Gantt chart."""
    if width < 10:
        raise ValueError("width must be at least 10 characters")
    lines: List[str] = [
        f"{result.pipeline_name} on {result.system_kind} "
        f"(ROI {result.roi_s:.6f}s)"
    ]
    for component in LANE_ORDER:
        lane = _lane(result.busy.get(component, []), result.roi_s, width)
        busy = result.busy_time(component)
        share = busy / result.roi_s if result.roi_s else 0.0
        lines.append(f"{component.value:<5s}|{lane}| {share:>4.0%}")
    ruler = "-" * width
    lines.append(f"     +{ruler}+")
    return "\n".join(lines)


def render_trace_timeline(
    events: Iterable["TraceEvent"], title: str = "trace", width: int = 72
) -> str:
    """Render an ASCII Gantt chart purely from emitted trace events.

    The same lane view as :func:`render_timeline`, but reconstructed from
    a run's span events (:mod:`repro.sim.observe`) instead of its
    :class:`SimResult` — what the ``repro trace`` command prints when no
    output file is requested.
    """
    from repro.sim.observe.sinks import busy_from_spans

    if width < 10:
        raise ValueError("width must be at least 10 characters")
    busy = busy_from_spans(events)
    roi_s = max(
        (iv.end for intervals in busy.values() for iv in intervals), default=0.0
    )
    lines: List[str] = [f"{title} (ROI {roi_s:.6f}s, from trace events)"]
    for component in LANE_ORDER:
        intervals = busy.get(component, [])
        lane = _lane(intervals, roi_s, width)
        busy_s = sum(iv.length for iv in merge_intervals(list(intervals)))
        share = busy_s / roi_s if roi_s else 0.0
        lines.append(f"{component.value:<5s}|{lane}| {share:>4.0%}")
    ruler = "-" * width
    lines.append(f"     +{ruler}+")
    return "\n".join(lines)


def render_stage_table(result: SimResult, limit: int = 30) -> str:
    """Per-stage schedule table (start, duration, off-chip traffic)."""
    header = (
        f"{'stage':<28s} {'comp':<5s} {'start(us)':>10s} {'dur(us)':>9s} "
        f"{'offchip':>8s} {'onchip':>7s} {'faults':>6s}"
    )
    lines = [header, "-" * len(header)]
    for record in result.stages[:limit]:
        lines.append(
            f"{record.name:<28s} {record.component.value:<5s} "
            f"{record.start_s * 1e6:>10.2f} "
            f"{record.duration_s * 1e6:>9.2f} "
            f"{record.offchip_accesses:>8d} {record.onchip_transfers:>7d} "
            f"{record.faults:>6d}"
        )
    if len(result.stages) > limit:
        lines.append(f"... {len(result.stages) - limit} more stages")
    return "\n".join(lines)


def utilization_summary(result: SimResult) -> Dict[str, float]:
    """One-line utilization numbers for quick comparisons."""
    return {
        f"{component.value}_utilization": result.utilization(component)
        for component in LANE_ORDER
    }
