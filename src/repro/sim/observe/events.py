"""Typed trace events emitted by the discrete-event engine.

The engine's hook points (:meth:`repro.sim.engine.Engine._execute`,
``_refine_bandwidth``, ``_drain_caches``) emit three event shapes:

* :class:`SpanEvent` — an activity interval on one component (a stage
  execution, a CPU launch sliver, CPU page-fault service).
* :class:`CounterEvent` — a point sample of a named counter (off-chip
  reads/writes, copy-link bytes, bandwidth shares, on-chip transfers).
* :class:`MarkEvent` — an instantaneous marker (end of the region of
  interest).

Event and category names are part of the public taxonomy documented in
``docs/TRACING.md``; tools (the Chrome exporter, the invariant monitor,
the differential tests) match on them, so treat the constants below as
stable identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Union

# -- span categories ----------------------------------------------------------

#: A pipeline stage executing on its component.
SPAN_STAGE = "stage"
#: The CPU-issued launch sliver preceding a kernel or copy.
SPAN_LAUNCH = "launch"
#: CPU time spent servicing GPU page faults during a kernel.
SPAN_FAULT = "fault"

SPAN_CATEGORIES = (SPAN_STAGE, SPAN_LAUNCH, SPAN_FAULT)

# -- counter names ------------------------------------------------------------

#: Off-chip read accesses reaching DRAM (value = access count).
CTR_DRAM_READS = "dram.reads"
#: Off-chip write accesses reaching DRAM (value = access count).
CTR_DRAM_WRITES = "dram.writes"
#: Bytes entering the copy link (PCIe on the discrete system, the shared
#: memory pool on the heterogeneous processor).
CTR_LINK_BYTES_IN = "link.bytes_in"
#: Bytes leaving the copy link.
CTR_LINK_BYTES_OUT = "link.bytes_out"
#: Effective bandwidth share granted to a stage (value = bytes/second).
CTR_BW_SHARE = "bw.share"
#: On-chip cache-to-cache transfers (heterogeneous processor).
CTR_ONCHIP_TRANSFERS = "onchip.transfers"

COUNTER_NAMES = (
    CTR_DRAM_READS,
    CTR_DRAM_WRITES,
    CTR_LINK_BYTES_IN,
    CTR_LINK_BYTES_OUT,
    CTR_BW_SHARE,
    CTR_ONCHIP_TRANSFERS,
)

# -- DRAM counter sources -----------------------------------------------------

#: A compute stage's own stream missing all the way to memory.
SRC_STAGE = "stage"
#: CPU zeroing of freshly mapped pages (page-fault model).
SRC_ZERO = "zero"
#: Pre-DMA flush writebacks of dirty source lines.
SRC_FLUSH = "flush"
#: The DMA engine's own reads/writes of copied lines.
SRC_COPY = "copy"
#: End-of-ROI drain of dirty cache lines.
SRC_DRAIN = "drain"

DRAM_SOURCES = (SRC_STAGE, SRC_ZERO, SRC_FLUSH, SRC_COPY, SRC_DRAIN)

#: DRAM sources counted in a :class:`~repro.sim.results.StageRecord`'s
#: ``offchip_reads`` / ``offchip_writes`` (zeroing and drain traffic is
#: logged but not attributed to any stage record).
RECORD_READ_SOURCES = (SRC_STAGE, SRC_COPY)
RECORD_WRITE_SOURCES = (SRC_STAGE, SRC_COPY, SRC_FLUSH)

# -- marks --------------------------------------------------------------------

#: End of the simulated region of interest (t = roi_s).
MARK_ROI_END = "roi.end"


@dataclass(frozen=True)
class SpanEvent:
    """An activity interval on one component."""

    category: str
    name: str
    component: str
    start_s: float
    end_s: float
    #: Stage ordinal the span belongs to; -1 when not stage-attributed.
    ordinal: int = -1
    args: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class CounterEvent:
    """A point sample of one named counter."""

    name: str
    component: str
    t_s: float
    value: float
    #: Stage ordinal the sample is attributed to; -1 when not attributed.
    ordinal: int = -1
    #: For ``dram.*`` counters: which mechanism produced the traffic
    #: (one of :data:`DRAM_SOURCES`); empty otherwise.
    source: str = ""
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class MarkEvent:
    """An instantaneous, global marker."""

    name: str
    t_s: float
    args: Mapping[str, Any] = field(default_factory=dict)


TraceEvent = Union[SpanEvent, CounterEvent, MarkEvent]


def event_to_dict(event: TraceEvent) -> Mapping[str, Any]:
    """Flatten one event to a JSON-compatible dict (the JSONL schema)."""
    if isinstance(event, SpanEvent):
        return {
            "type": "span",
            "category": event.category,
            "name": event.name,
            "component": event.component,
            "start_s": event.start_s,
            "end_s": event.end_s,
            "ordinal": event.ordinal,
            "args": dict(event.args),
        }
    if isinstance(event, CounterEvent):
        return {
            "type": "counter",
            "name": event.name,
            "component": event.component,
            "t_s": event.t_s,
            "value": event.value,
            "ordinal": event.ordinal,
            "source": event.source,
            "args": dict(event.args),
        }
    if isinstance(event, MarkEvent):
        return {
            "type": "mark",
            "name": event.name,
            "t_s": event.t_s,
            "args": dict(event.args),
        }
    raise TypeError(f"not a trace event: {type(event).__name__}")
