"""Chrome ``trace_event`` export of engine traces.

Produces the JSON object format consumed by Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` viewer:
``{"traceEvents": [...], "displayTimeUnit": "us", "otherData": {...}}``.
Spans become complete events (``ph == "X"``), counters counter events
(``ph == "C"``), marks global instants (``ph == "i"``); one process with
one thread lane per component keeps the Fig. 3/6-style who-is-active-when
view intact.

:func:`validate_chrome_trace` is a minimal structural checker for the
subset this exporter emits; the golden-trace tests and the ``repro
trace`` CLI run every export through it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Union

from repro.sim.hierarchy import Component
from repro.sim.observe.events import (
    CounterEvent,
    MarkEvent,
    SpanEvent,
    TraceEvent,
)

#: Schema tag recorded in the exported ``otherData``.
CHROME_SCHEMA = "repro.trace/chrome/v1"

#: Process id used for every event (one simulated machine).
PID = 1

#: Thread lane per component, in the timeline's render order.
TID_OF_COMPONENT = {
    Component.COPY.value: 1,
    Component.CPU.value: 2,
    Component.GPU.value: 3,
}

_SECONDS_TO_US = 1e6

_VALID_PHASES = ("X", "C", "i", "M")


def _metadata_events(name: str) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": name},
        }
    ]
    for component, tid in sorted(TID_OF_COMPONENT.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "args": {"name": component},
            }
        )
    return events


def _span_to_chrome(event: SpanEvent) -> Dict[str, Any]:
    args: Dict[str, Any] = {"category": event.category, **dict(event.args)}
    if event.ordinal >= 0:
        args["ordinal"] = event.ordinal
    return {
        "name": event.name,
        "cat": event.category,
        "ph": "X",
        "pid": PID,
        "tid": TID_OF_COMPONENT[event.component],
        "ts": event.start_s * _SECONDS_TO_US,
        "dur": event.duration_s * _SECONDS_TO_US,
        "args": args,
    }


def _counter_to_chrome(event: CounterEvent) -> Dict[str, Any]:
    args: Dict[str, Any] = {"value": event.value}
    if event.source:
        args["source"] = event.source
    return {
        "name": f"{event.component}.{event.name}",
        "cat": "counter",
        "ph": "C",
        "pid": PID,
        "tid": TID_OF_COMPONENT[event.component],
        "ts": event.t_s * _SECONDS_TO_US,
        "args": args,
    }


def _mark_to_chrome(event: MarkEvent) -> Dict[str, Any]:
    return {
        "name": event.name,
        "cat": "mark",
        "ph": "i",
        "s": "g",
        "pid": PID,
        "tid": 0,
        "ts": event.t_s * _SECONDS_TO_US,
        "args": dict(event.args),
    }


def chrome_trace_dict(
    events: Iterable[TraceEvent],
    *,
    name: str = "repro",
    other_data: Mapping[str, Any] = (),
) -> Dict[str, Any]:
    """Convert events to a Chrome ``trace_event`` JSON-object payload."""
    trace_events = _metadata_events(name)
    for event in events:
        if isinstance(event, SpanEvent):
            trace_events.append(_span_to_chrome(event))
        elif isinstance(event, CounterEvent):
            trace_events.append(_counter_to_chrome(event))
        elif isinstance(event, MarkEvent):
            trace_events.append(_mark_to_chrome(event))
        else:
            raise TypeError(f"not a trace event: {type(event).__name__}")
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": CHROME_SCHEMA, "name": name, **dict(other_data)},
    }


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[TraceEvent],
    *,
    name: str = "repro",
    other_data: Mapping[str, Any] = (),
) -> Dict[str, Any]:
    """Export events to ``path``; returns the (validated) payload."""
    payload = chrome_trace_dict(events, name=name, other_data=other_data)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write malformed Chrome trace: " + "; ".join(problems)
        )
    Path(path).write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    return payload


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structurally check a Chrome ``trace_event`` JSON-object payload.

    Returns a list of human-readable problems; an empty list means the
    payload is loadable by Perfetto / ``chrome://tracing``.  Only the
    subset this exporter emits is checked (complete, counter, instant,
    and metadata phases).
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: bad phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing integer pid")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: missing integer tid")
        if phase != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: missing non-negative ts")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs non-negative dur")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event needs args")
            elif not all(
                isinstance(value, (int, float)) and not isinstance(value, bool)
                for key, value in args.items()
                if key == "value"
            ):
                problems.append(f"{where}: counter 'value' must be numeric")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant event needs scope s in g/p/t")
        if phase == "M" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: metadata event needs args")
    return problems
