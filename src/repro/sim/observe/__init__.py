"""Event tracing and invariant monitoring for the simulation engine.

``repro.sim.observe`` makes :class:`repro.sim.engine.Engine` observable:
attach sinks via ``simulate(..., sinks=[...])`` and the engine emits
typed span/counter/mark events at its hook points (stage execution,
bandwidth refinement, cache drains).  See docs/TRACING.md for the event
taxonomy, the sink API, and the invariant catalogue.

* :class:`TraceRecorder` buffers events in memory.
* :class:`JsonlSink` streams them as compact JSONL.
* :func:`chrome_trace_dict` / :func:`write_chrome_trace` export a Chrome
  ``trace_event`` JSON loadable in Perfetto or ``chrome://tracing``.
* :class:`InvariantMonitor` checks conservation laws online and records
  (or raises on) violations.
* :class:`MetricsRegistry` aggregates per-run counters across a sweep.
"""

from repro.sim.observe.chrome import (
    CHROME_SCHEMA,
    chrome_trace_dict,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.observe.events import (
    COUNTER_NAMES,
    CTR_BW_SHARE,
    CTR_DRAM_READS,
    CTR_DRAM_WRITES,
    CTR_LINK_BYTES_IN,
    CTR_LINK_BYTES_OUT,
    CTR_ONCHIP_TRANSFERS,
    DRAM_SOURCES,
    MARK_ROI_END,
    SPAN_CATEGORIES,
    SPAN_FAULT,
    SPAN_LAUNCH,
    SPAN_STAGE,
    CounterEvent,
    MarkEvent,
    SpanEvent,
    TraceEvent,
    event_to_dict,
)
from repro.sim.observe.invariants import (
    INVARIANTS,
    InvariantError,
    InvariantMonitor,
)
from repro.sim.observe.metrics import MetricsRegistry, RunTraceSummary
from repro.sim.observe.sinks import (
    BaseSink,
    JsonlSink,
    TraceRecorder,
    TraceSink,
    busy_from_spans,
)
from repro.sim.results import InvariantViolation

__all__ = [
    "BaseSink",
    "CHROME_SCHEMA",
    "COUNTER_NAMES",
    "CTR_BW_SHARE",
    "CTR_DRAM_READS",
    "CTR_DRAM_WRITES",
    "CTR_LINK_BYTES_IN",
    "CTR_LINK_BYTES_OUT",
    "CTR_ONCHIP_TRANSFERS",
    "CounterEvent",
    "DRAM_SOURCES",
    "INVARIANTS",
    "InvariantError",
    "InvariantMonitor",
    "InvariantViolation",
    "JsonlSink",
    "MARK_ROI_END",
    "MarkEvent",
    "MetricsRegistry",
    "RunTraceSummary",
    "SPAN_CATEGORIES",
    "SPAN_FAULT",
    "SPAN_LAUNCH",
    "SPAN_STAGE",
    "SpanEvent",
    "TraceEvent",
    "TraceRecorder",
    "TraceSink",
    "busy_from_spans",
    "chrome_trace_dict",
    "event_to_dict",
    "validate_chrome_trace",
    "write_chrome_trace",
]
