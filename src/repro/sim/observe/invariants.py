"""Online invariant monitoring: conservation laws of the simulation.

The :class:`InvariantMonitor` is a trace sink that accumulates the
engine's span/counter events during a run and, when the run finishes,
checks them against the completed :class:`~repro.sim.results.SimResult`.
Every check is a conservation law the discrete-event model must satisfy
by construction, so any violation is an engine (or event-emission) bug —
the runtime analogue of the static lint rules in :mod:`repro.analysis`.

Catalogue (stable IDs; see docs/TRACING.md):

* **INV001 busy-span conservation** — each component's busy time in the
  result equals the merged time of the spans emitted for it.
* **INV002 link byte conservation** — for every copy stage, the bytes
  entering the copy link equal the bytes leaving it.
* **INV003 DRAM log conservation** — per-stage ``offchip_accesses`` match
  the DRAM counter events, and (when the off-chip log is collected) the
  logged accesses per stage ordinal match the counters exactly.
* **INV004 ROI partition** — the activity breakdown (exclusive +
  overlapped + idle time) sums to the ROI.
* **INV005 span bounds** — every span lies within ``[0, roi]``.

Violations are recorded on ``SimResult.violations`` (``mode="record"``,
the default) or raised as :class:`InvariantError` (``mode="raise"``).
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from repro.sim.hierarchy import Component
from repro.sim.observe.events import (
    CTR_DRAM_READS,
    CTR_DRAM_WRITES,
    CTR_LINK_BYTES_IN,
    CTR_LINK_BYTES_OUT,
    CounterEvent,
    MarkEvent,
    RECORD_READ_SOURCES,
    RECORD_WRITE_SOURCES,
    SpanEvent,
    TraceEvent,
)
from repro.sim.observe.sinks import BaseSink
from repro.sim.results import (
    Interval,
    InvariantViolation,
    SimResult,
    total_time,
)

#: The invariant catalogue: stable ID -> one-line description.
INVARIANTS = {
    "INV001": "component busy time equals the merged time of its spans",
    "INV002": "bytes entering the copy link equal bytes leaving it",
    "INV003": "per-stage offchip accesses match the DRAM counter events",
    "INV004": "activity breakdown (exclusive+overlapped+idle) sums to ROI",
    "INV005": "every span lies within [0, roi]",
}

#: Relative tolerance for the float equalities.  The monitor re-derives
#: quantities from the very same floats the engine used, so this only
#: absorbs summation-order noise.
REL_TOL = 1e-9
ABS_TOL = 1e-12


class InvariantError(RuntimeError):
    """Raised by a monitor in ``raise`` mode; carries the violations."""

    def __init__(self, violations: Tuple[InvariantViolation, ...]):
        self.violations = violations
        lines = [f"{len(violations)} invariant violation(s):"]
        lines += [f"  [{v.rule}] {v.message}" for v in violations]
        super().__init__("\n".join(lines))


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


class InvariantMonitor(BaseSink):
    """Checks the conservation laws over one simulation run.

    Args:
        mode: ``"record"`` stores violations on ``SimResult.violations``;
            ``"raise"`` additionally raises :class:`InvariantError` from
            ``finish`` when any law is broken.
    """

    def __init__(self, mode: str = "record"):
        if mode not in ("record", "raise"):
            raise ValueError(f"unknown monitor mode {mode!r}")
        self.mode = mode
        self.violations: Tuple[InvariantViolation, ...] = ()
        self._spans: Dict[str, List[Interval]] = defaultdict(list)
        self._span_bounds: List[SpanEvent] = []
        # (reads, writes) DRAM access counts per (ordinal, source).
        self._dram: Dict[Tuple[int, str], List[float]] = defaultdict(
            lambda: [0.0, 0.0]
        )
        self._link: Dict[int, List[float]] = defaultdict(lambda: [0.0, 0.0])
        self.events_seen = 0

    # -- accumulation ---------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        self.events_seen += 1
        if isinstance(event, SpanEvent):
            self._spans[event.component].append(
                Interval(event.start_s, event.end_s)
            )
            self._span_bounds.append(event)
        elif isinstance(event, CounterEvent):
            if event.name == CTR_DRAM_READS:
                self._dram[(event.ordinal, event.source)][0] += event.value
            elif event.name == CTR_DRAM_WRITES:
                self._dram[(event.ordinal, event.source)][1] += event.value
            elif event.name == CTR_LINK_BYTES_IN:
                self._link[event.ordinal][0] += event.value
            elif event.name == CTR_LINK_BYTES_OUT:
                self._link[event.ordinal][1] += event.value
        elif not isinstance(event, MarkEvent):
            raise TypeError(f"not a trace event: {type(event).__name__}")

    # -- checks ---------------------------------------------------------------

    def finish(self, result: SimResult) -> None:
        found: List[InvariantViolation] = []
        found += self._check_busy_spans(result)
        found += self._check_link_bytes(result)
        found += self._check_dram_log(result)
        found += self._check_roi_partition(result)
        found += self._check_span_bounds(result)
        self.violations = tuple(found)
        if self.mode == "raise" and self.violations:
            raise InvariantError(self.violations)

    def _check_busy_spans(self, result: SimResult) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for component in Component:
            recorded = result.busy_time(component)
            observed = total_time(self._spans.get(component.value, []))
            if not _close(recorded, observed):
                out.append(
                    InvariantViolation(
                        rule="INV001",
                        message=(
                            f"{component.value} busy time {recorded!r} != "
                            f"span-derived time {observed!r}"
                        ),
                        component=component.value,
                        measured=observed,
                        expected=recorded,
                    )
                )
        return out

    def _check_link_bytes(self, result: SimResult) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        for ordinal in sorted(self._link):
            bytes_in, bytes_out = self._link[ordinal]
            if not _close(bytes_in, bytes_out):
                out.append(
                    InvariantViolation(
                        rule="INV002",
                        message=(
                            f"copy stage ordinal {ordinal}: {bytes_in:.0f} "
                            f"bytes entered the link, {bytes_out:.0f} left it"
                        ),
                        ordinal=ordinal,
                        component=Component.COPY.value,
                        measured=bytes_out,
                        expected=bytes_in,
                    )
                )
        return out

    def _dram_counts(self, ordinal: int, sources) -> Tuple[float, float]:
        reads = sum(self._dram[(ordinal, src)][0] for src in sources)
        writes = sum(self._dram[(ordinal, src)][1] for src in sources)
        return reads, writes

    def _check_dram_log(self, result: SimResult) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        # (a) every stage record's off-chip counts match the counters
        #     attributed to it (zero/drain traffic is deliberately outside
        #     the records; see events.RECORD_*_SOURCES).
        for record in result.stages:
            reads, _ = self._dram_counts(record.ordinal, RECORD_READ_SOURCES)
            _, writes = self._dram_counts(record.ordinal, RECORD_WRITE_SOURCES)
            if reads != record.offchip_reads or writes != record.offchip_writes:
                out.append(
                    InvariantViolation(
                        rule="INV003",
                        message=(
                            f"stage {record.name!r} (ordinal {record.ordinal}) "
                            f"records {record.offchip_reads}r/"
                            f"{record.offchip_writes}w off-chip but counters "
                            f"say {reads:.0f}r/{writes:.0f}w"
                        ),
                        ordinal=record.ordinal,
                        component=record.component.value,
                        measured=reads + writes,
                        expected=record.offchip_accesses,
                    )
                )
        # (b) with the log collected, logged accesses per ordinal equal the
        #     counter totals for that ordinal, across every source.
        if len(result.log_blocks):
            logged_reads: Dict[int, int] = defaultdict(int)
            logged_writes: Dict[int, int] = defaultdict(int)
            ordinals, counts = np.unique(
                result.log_stage[~result.log_is_write], return_counts=True
            )
            for ordinal, count in zip(ordinals, counts):
                logged_reads[int(ordinal)] = int(count)
            ordinals, counts = np.unique(
                result.log_stage[result.log_is_write], return_counts=True
            )
            for ordinal, count in zip(ordinals, counts):
                logged_writes[int(ordinal)] = int(count)
            counted_reads: Dict[int, float] = defaultdict(float)
            counted_writes: Dict[int, float] = defaultdict(float)
            for (ordinal, _source), (reads, writes) in self._dram.items():
                counted_reads[ordinal] += reads
                counted_writes[ordinal] += writes
            for ordinal in sorted(
                set(logged_reads) | set(logged_writes)
                | set(counted_reads) | set(counted_writes)
            ):
                got = (logged_reads[ordinal], logged_writes[ordinal])
                want = (counted_reads[ordinal], counted_writes[ordinal])
                if got != want:
                    out.append(
                        InvariantViolation(
                            rule="INV003",
                            message=(
                                f"off-chip log holds {got[0]}r/{got[1]}w for "
                                f"ordinal {ordinal} but counters say "
                                f"{want[0]:.0f}r/{want[1]:.0f}w"
                            ),
                            ordinal=ordinal,
                            measured=float(sum(got)),
                            expected=float(sum(want)),
                        )
                    )
        return out

    def _check_roi_partition(self, result: SimResult) -> List[InvariantViolation]:
        activity = result.activity()
        covered = sum(activity.values())
        if not _close(covered, result.roi_s):
            return [
                InvariantViolation(
                    rule="INV004",
                    message=(
                        f"activity breakdown covers {covered!r}s of a "
                        f"{result.roi_s!r}s ROI"
                    ),
                    measured=covered,
                    expected=result.roi_s,
                )
            ]
        return []

    def _check_span_bounds(self, result: SimResult) -> List[InvariantViolation]:
        out: List[InvariantViolation] = []
        limit = result.roi_s * (1.0 + REL_TOL) + ABS_TOL
        for span in self._span_bounds:
            if span.start_s < -ABS_TOL or span.end_s > limit:
                out.append(
                    InvariantViolation(
                        rule="INV005",
                        message=(
                            f"span {span.name!r} [{span.start_s!r}, "
                            f"{span.end_s!r}] escapes the ROI "
                            f"[0, {result.roi_s!r}]"
                        ),
                        ordinal=span.ordinal,
                        component=span.component,
                        measured=span.end_s,
                        expected=result.roi_s,
                    )
                )
        return out
