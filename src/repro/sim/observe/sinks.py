"""Trace sinks: where engine events go.

A sink is anything implementing the two-method :class:`TraceSink`
protocol.  The engine calls ``emit`` for every event in simulation order
and ``finish`` exactly once with the completed
:class:`~repro.sim.results.SimResult` (before returning it), so sinks can
both stream events out and run whole-run analyses.

Attaching sinks is observation-only by contract: no sink can change the
simulation's outcome, and the differential tests assert results are
bit-identical with and without sinks attached.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Dict, Iterable, List, Optional, Protocol, Union, runtime_checkable

from repro.sim.hierarchy import Component
from repro.sim.observe.events import (
    CounterEvent,
    MarkEvent,
    SpanEvent,
    TraceEvent,
    event_to_dict,
)
from repro.sim.results import Interval, SimResult


@runtime_checkable
class TraceSink(Protocol):
    """Receiver of engine trace events."""

    def emit(self, event: TraceEvent) -> None:
        """Handle one event (called in simulation order)."""

    def finish(self, result: SimResult) -> None:
        """Called once when the run completes, with the final result."""


class BaseSink:
    """Convenience base: no-op ``finish`` so sinks only implement ``emit``."""

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self, result: SimResult) -> None:
        return None


class TraceRecorder(BaseSink):
    """Buffers every event in memory, in emission order."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.result: Optional[SimResult] = None

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def finish(self, result: SimResult) -> None:
        self.result = result

    # -- views ---------------------------------------------------------------

    def spans(self, category: Optional[str] = None) -> List[SpanEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, SpanEvent)
            and (category is None or e.category == category)
        ]

    def counters(self, name: Optional[str] = None) -> List[CounterEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, CounterEvent) and (name is None or e.name == name)
        ]

    def marks(self, name: Optional[str] = None) -> List[MarkEvent]:
        return [
            e
            for e in self.events
            if isinstance(e, MarkEvent) and (name is None or e.name == name)
        ]


class JsonlSink(BaseSink):
    """Streams events as one JSON object per line (compact JSONL).

    Accepts an open text handle or a path; with a path the file is opened
    on first event and closed by ``finish``/``close``.
    """

    def __init__(self, target: Union[str, Path, IO[str]]):
        self._path: Optional[Path] = None
        self._handle: Optional[IO[str]] = None
        if isinstance(target, (str, Path)):
            self._path = Path(target)
        else:
            self._handle = target
        self.events_written = 0

    def _out(self) -> IO[str]:
        if self._handle is None:
            assert self._path is not None
            self._handle = open(self._path, "w", encoding="utf-8")
        return self._handle

    def emit(self, event: TraceEvent) -> None:
        json.dump(event_to_dict(event), self._out(), separators=(",", ":"))
        self._out().write("\n")
        self.events_written += 1

    def finish(self, result: SimResult) -> None:
        self.close()

    def close(self) -> None:
        if self._path is not None and self._handle is not None:
            self._handle.close()
            self._handle = None


def busy_from_spans(
    events: Iterable[TraceEvent],
) -> Dict[Component, List[Interval]]:
    """Rebuild the per-component busy-interval map purely from span events.

    Mirrors the engine's own accounting: a component is busy during its
    stage spans, the CPU additionally during launch slivers and page-fault
    service.  The differential tests assert this reconstruction agrees
    exactly with :attr:`SimResult.busy`.
    """
    busy: Dict[Component, List[Interval]] = {comp: [] for comp in Component}
    by_value = {comp.value: comp for comp in Component}
    for event in events:
        if isinstance(event, SpanEvent):
            busy[by_value[event.component]].append(
                Interval(event.start_s, event.end_s)
            )
    return busy
