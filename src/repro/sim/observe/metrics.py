"""Sweep-wide metrics registry: per-benchmark trace summaries.

Workers of the parallel sweep (:mod:`repro.experiments.parallel`) run in
separate processes, so live trace events cannot cross the pool boundary;
what every run *does* ship back is its full :class:`SimResult`.  The
registry derives a compact :class:`RunTraceSummary` from each result as
it lands — fresh simulation, persistent-cache hit, or memo hit alike —
so a sweep can surface who-was-busy/how-much-moved numbers per benchmark
without re-running anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.sim.hierarchy import Component
from repro.sim.results import SimResult

if TYPE_CHECKING:  # typed loosely at runtime: the experiments layer sits
    # above this observability layer and must not be imported from it
    from repro.experiments.parallel import TaskFailure


@dataclass(frozen=True)
class RunTraceSummary:
    """Counters of one (benchmark, version) run."""

    benchmark: str
    version: str
    roi_s: float
    busy_s: Dict[str, float]
    offchip_accesses: int
    offchip_bytes: int
    onchip_transfers: int
    faults: int
    stages: int
    violations: int

    @classmethod
    def from_result(
        cls, benchmark: str, version: str, result: SimResult
    ) -> "RunTraceSummary":
        return cls(
            benchmark=benchmark,
            version=version,
            roi_s=result.roi_s,
            busy_s={
                component.value: result.busy_time(component)
                for component in Component
            },
            offchip_accesses=result.offchip_accesses(),
            offchip_bytes=result.offchip_bytes(),
            onchip_transfers=sum(r.onchip_transfers for r in result.stages),
            faults=sum(r.faults for r in result.stages),
            stages=len(result.stages),
            violations=len(result.violations),
        )


class MetricsRegistry:
    """Aggregates run summaries across one (or many) sweeps.

    Keyed by ``(benchmark, version)``: re-running a pair (memo or cache
    replay) overwrites its summary instead of double counting.
    """

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, str], RunTraceSummary] = {}
        self._failures: Dict[Tuple[str, str], "TaskFailure"] = {}
        self._stage_memo_hits = 0
        self._stage_memo_misses = 0

    def record(self, benchmark: str, version: str, result: SimResult) -> None:
        self._runs[(benchmark, version)] = RunTraceSummary.from_result(
            benchmark, version, result
        )
        # A pair that eventually produced a result recovered: drop any
        # failure recorded for it by an earlier sweep.
        self._failures.pop((benchmark, version), None)

    def record_stage_memo(self, hits: int, misses: int) -> None:
        """Accumulate one run's stage-memo lookup counts.

        Unlike run summaries these are *cumulative* across re-runs: a pair
        simulated twice genuinely did two sets of lookups, and hit/miss
        totals are throughput telemetry, not per-pair state.
        """
        self._stage_memo_hits += int(hits)
        self._stage_memo_misses += int(misses)

    @property
    def stage_memo_hits(self) -> int:
        return self._stage_memo_hits

    @property
    def stage_memo_misses(self) -> int:
        return self._stage_memo_misses

    def record_failure(self, failure: "TaskFailure") -> None:
        """Remember a task that exhausted its retries (keyed like runs, so
        a later successful re-run clears it)."""
        self._failures[(failure.benchmark, failure.version)] = failure

    @property
    def failures(self) -> List["TaskFailure"]:
        """Outstanding failures, ordered by (benchmark, version)."""
        return [self._failures[key] for key in sorted(self._failures)]

    def __len__(self) -> int:
        return len(self._runs)

    def summaries(self) -> List[RunTraceSummary]:
        return [self._runs[key] for key in sorted(self._runs)]

    def benchmark_summaries(self, benchmark: str) -> List[RunTraceSummary]:
        return [s for s in self.summaries() if s.benchmark == benchmark]

    def totals(self) -> Dict[str, float]:
        """Sweep-wide counter totals (the numbers behind Figs. 4-6)."""
        totals: Dict[str, float] = {
            "runs": float(len(self._runs)),
            "roi_s": 0.0,
            "offchip_accesses": 0.0,
            "offchip_bytes": 0.0,
            "onchip_transfers": 0.0,
            "faults": 0.0,
            "stages": 0.0,
            "violations": 0.0,
            "failed_runs": float(len(self._failures)),
            "stage_memo_hits": float(self._stage_memo_hits),
            "stage_memo_misses": float(self._stage_memo_misses),
        }
        for component in Component:
            totals[f"busy_{component.value}_s"] = 0.0
        for summary in self._runs.values():
            totals["roi_s"] += summary.roi_s
            totals["offchip_accesses"] += summary.offchip_accesses
            totals["offchip_bytes"] += summary.offchip_bytes
            totals["onchip_transfers"] += summary.onchip_transfers
            totals["faults"] += summary.faults
            totals["stages"] += summary.stages
            totals["violations"] += summary.violations
            for component, busy in summary.busy_s.items():
                totals[f"busy_{component}_s"] += busy
        return totals

    def format_table(self) -> str:
        """Render the per-benchmark trace summaries as an aligned table."""
        header = (
            f"{'benchmark':<24s} {'version':<12s} {'roi(ms)':>9s} "
            f"{'cpu%':>5s} {'gpu%':>5s} {'copy%':>5s} {'offchip':>10s} "
            f"{'viol':>4s}"
        )
        lines = [header, "-" * len(header)]
        for s in self.summaries():
            def share(component: str) -> str:
                return (
                    f"{s.busy_s[component] / s.roi_s:4.0%}" if s.roi_s else "   -"
                )

            lines.append(
                f"{s.benchmark:<24s} {s.version:<12s} {s.roi_s * 1e3:>9.3f} "
                f"{share('cpu'):>5s} {share('gpu'):>5s} {share('copy'):>5s} "
                f"{s.offchip_accesses:>10d} {s.violations:>4d}"
            )
        for failure in self.failures:
            lines.append(
                f"{failure.benchmark:<24s} {failure.version:<12s} "
                f"FAILED [{failure.worker_fate}] {failure.error_type}"
            )
        return "\n".join(lines)
