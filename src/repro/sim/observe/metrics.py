"""Sweep-wide metrics registry: per-benchmark trace summaries.

Workers of the parallel sweep (:mod:`repro.experiments.parallel`) run in
separate processes, so live trace events cannot cross the pool boundary;
what every run *does* ship back is its full :class:`SimResult`.  The
registry derives a compact :class:`RunTraceSummary` from each result as
it lands — fresh simulation, persistent-cache hit, or memo hit alike —
so a sweep can surface who-was-busy/how-much-moved numbers per benchmark
without re-running anything.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.sim.hierarchy import Component
from repro.sim.results import SimResult

if TYPE_CHECKING:  # typed loosely at runtime: the experiments layer sits
    # above this observability layer and must not be imported from it
    from repro.experiments.parallel import TaskFailure


@dataclass(frozen=True)
class RunTraceSummary:
    """Counters of one (benchmark, version) run."""

    benchmark: str
    version: str
    roi_s: float
    busy_s: Dict[str, float]
    offchip_accesses: int
    offchip_bytes: int
    onchip_transfers: int
    faults: int
    stages: int
    violations: int

    @classmethod
    def from_result(
        cls, benchmark: str, version: str, result: SimResult
    ) -> "RunTraceSummary":
        return cls(
            benchmark=benchmark,
            version=version,
            roi_s=result.roi_s,
            busy_s={
                component.value: result.busy_time(component)
                for component in Component
            },
            offchip_accesses=result.offchip_accesses(),
            offchip_bytes=result.offchip_bytes(),
            onchip_transfers=sum(r.onchip_transfers for r in result.stages),
            faults=sum(r.faults for r in result.stages),
            stages=len(result.stages),
            violations=len(result.violations),
        )


class MetricsRegistry:
    """Aggregates run summaries across one (or many) sweeps.

    Keyed by ``(benchmark, version)``: re-running a pair (memo or cache
    replay) overwrites its summary instead of double counting.
    """

    def __init__(self) -> None:
        self._runs: Dict[Tuple[str, str], RunTraceSummary] = {}
        self._failures: Dict[Tuple[str, str], "TaskFailure"] = {}
        self._stage_memo_hits = 0
        self._stage_memo_misses = 0

    def record(self, benchmark: str, version: str, result: SimResult) -> None:
        self._runs[(benchmark, version)] = RunTraceSummary.from_result(
            benchmark, version, result
        )
        # A pair that eventually produced a result recovered: drop any
        # failure recorded for it by an earlier sweep.
        self._failures.pop((benchmark, version), None)

    def record_stage_memo(self, hits: int, misses: int) -> None:
        """Accumulate one run's stage-memo lookup counts.

        Unlike run summaries these are *cumulative* across re-runs: a pair
        simulated twice genuinely did two sets of lookups, and hit/miss
        totals are throughput telemetry, not per-pair state.
        """
        self._stage_memo_hits += int(hits)
        self._stage_memo_misses += int(misses)

    @property
    def stage_memo_hits(self) -> int:
        return self._stage_memo_hits

    @property
    def stage_memo_misses(self) -> int:
        return self._stage_memo_misses

    def record_failure(self, failure: "TaskFailure") -> None:
        """Remember a task that exhausted its retries (keyed like runs, so
        a later successful re-run clears it)."""
        self._failures[(failure.benchmark, failure.version)] = failure

    @property
    def failures(self) -> List["TaskFailure"]:
        """Outstanding failures, ordered by (benchmark, version)."""
        return [self._failures[key] for key in sorted(self._failures)]

    def __len__(self) -> int:
        return len(self._runs)

    def summaries(self) -> List[RunTraceSummary]:
        return [self._runs[key] for key in sorted(self._runs)]

    def benchmark_summaries(self, benchmark: str) -> List[RunTraceSummary]:
        return [s for s in self.summaries() if s.benchmark == benchmark]

    def totals(self) -> Dict[str, float]:
        """Sweep-wide counter totals (the numbers behind Figs. 4-6)."""
        totals: Dict[str, float] = {
            "runs": float(len(self._runs)),
            "roi_s": 0.0,
            "offchip_accesses": 0.0,
            "offchip_bytes": 0.0,
            "onchip_transfers": 0.0,
            "faults": 0.0,
            "stages": 0.0,
            "violations": 0.0,
            "failed_runs": float(len(self._failures)),
            "stage_memo_hits": float(self._stage_memo_hits),
            "stage_memo_misses": float(self._stage_memo_misses),
        }
        for component in Component:
            totals[f"busy_{component.value}_s"] = 0.0
        for summary in self._runs.values():
            totals["roi_s"] += summary.roi_s
            totals["offchip_accesses"] += summary.offchip_accesses
            totals["offchip_bytes"] += summary.offchip_bytes
            totals["onchip_transfers"] += summary.onchip_transfers
            totals["faults"] += summary.faults
            totals["stages"] += summary.stages
            totals["violations"] += summary.violations
            for component, busy in summary.busy_s.items():
                totals[f"busy_{component}_s"] += busy
        return totals

    def format_table(self) -> str:
        """Render the per-benchmark trace summaries as an aligned table."""
        header = (
            f"{'benchmark':<24s} {'version':<12s} {'roi(ms)':>9s} "
            f"{'cpu%':>5s} {'gpu%':>5s} {'copy%':>5s} {'offchip':>10s} "
            f"{'viol':>4s}"
        )
        lines = [header, "-" * len(header)]
        for s in self.summaries():
            def share(component: str) -> str:
                return (
                    f"{s.busy_s[component] / s.roi_s:4.0%}" if s.roi_s else "   -"
                )

            lines.append(
                f"{s.benchmark:<24s} {s.version:<12s} {s.roi_s * 1e3:>9.3f} "
                f"{share('cpu'):>5s} {share('gpu'):>5s} {share('copy'):>5s} "
                f"{s.offchip_accesses:>10d} {s.violations:>4d}"
            )
        for failure in self.failures:
            lines.append(
                f"{failure.benchmark:<24s} {failure.version:<12s} "
                f"FAILED [{failure.worker_fate}] {failure.error_type}"
            )
        return "\n".join(lines)


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in [0, 100])."""
    if not samples:
        raise ValueError("percentile of no samples")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[int(rank)]


class ServiceMetrics:
    """Request-level counters of the serve layer (docs/SERVING.md).

    Mirrors SHARP's launcher measurements: every request records its
    *outer time* — wall clock from the first byte of the request line to
    the last byte of the response, overhead included — per route, plus a
    queue-depth gauge sampled at every job submit/start.  Thread-safe:
    the event loop and job-runner threads both record into it.

    Latency samples are kept in a bounded ring per route (newest
    ``reservoir`` samples) so a long-running server's memory stays flat;
    counts are exact regardless.
    """

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._reservoir = reservoir
        self._requests: Dict[str, int] = {}
        self._statuses: Dict[int, int] = {}
        self._outer: Dict[str, Deque[float]] = {}
        self._queue_depth = 0
        self._max_queue_depth = 0

    def record_request(self, route: str, status: int, outer_s: float) -> None:
        with self._lock:
            self._requests[route] = self._requests.get(route, 0) + 1
            self._statuses[status] = self._statuses.get(status, 0) + 1
            ring = self._outer.get(route)
            if ring is None:
                ring = self._outer[route] = deque(maxlen=self._reservoir)
            ring.append(outer_s)

    def record_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = depth
            self._max_queue_depth = max(self._max_queue_depth, depth)

    @property
    def total_requests(self) -> int:
        with self._lock:
            return sum(self._requests.values())

    def outer_percentile(self, route: str, q: float) -> Optional[float]:
        """Percentile of a route's recorded outer times (None if unseen)."""
        with self._lock:
            samples = list(self._outer.get(route, ()))
        if not samples:
            return None
        return percentile(samples, q)

    def snapshot(self) -> Dict[str, object]:
        """One JSON-able view of everything recorded so far."""
        with self._lock:
            routes = {}
            for route in sorted(self._requests):
                samples = list(self._outer.get(route, ()))
                entry: Dict[str, object] = {
                    "requests": self._requests[route],
                }
                if samples:
                    entry["outer_s"] = {
                        "p50": percentile(samples, 50),
                        "p95": percentile(samples, 95),
                        "max": max(samples),
                    }
                routes[route] = entry
            return {
                "requests": sum(self._requests.values()),
                "statuses": {
                    str(code): count
                    for code, count in sorted(self._statuses.items())
                },
                "routes": routes,
                "queue_depth": self._queue_depth,
                "max_queue_depth": self._max_queue_depth,
            }
