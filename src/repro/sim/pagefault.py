"""CPU-handled GPU page faults (heterogeneous processor).

With a shared page table, a GPU access to an unmapped page interrupts the
CPU, which maps the page (optionally zeroing it) and returns the
translation.  Faults are serviced serially, so fault-heavy GPU stages both
slow down and shift work onto the CPU — the Section IV effects on srad,
heartwall and pr_spmv.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

import numpy as np

from repro.config.system import PageFaultConfig
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import StageKind
from repro.trace.generator import BufferLayout


@dataclass(frozen=True)
class FaultResult:
    """Faults taken by one stage and the CPU time spent servicing them."""

    faults: int
    service_time_s: float
    zeroed_blocks: np.ndarray  # blocks the CPU wrote while zeroing new pages


def premapped_pages(pipeline: Pipeline, layout: BufferLayout) -> Set[int]:
    """Pages mapped before the ROI begins.

    The ROI starts after the CPU has set up all input data in its physical
    memory, so every true *input* buffer — one some stage reads before any
    stage writes it — is already mapped.  Output and intermediate buffers
    (first access is a write) and GPU temporaries are unmapped and will
    fault on first touch.
    """
    first_access_is_read: Set[str] = set()
    written: Set[str] = set()
    for stage in pipeline.topological_order():
        for access in stage.reads:
            if access.buffer not in written and access.buffer not in first_access_is_read:
                first_access_is_read.add(access.buffer)
        for access in stage.writes:
            written.add(access.buffer)

    pages: Set[int] = set()
    for name in first_access_is_read:
        buf = pipeline.buffers[name]
        if buf.temporary:
            continue
        base = layout.base_block(name)
        nblocks = layout.num_blocks(name)
        first_page = base // layout.blocks_per_page
        last_page = (base + nblocks - 1) // layout.blocks_per_page
        pages.update(range(first_page, last_page + 1))
    return pages


_TOKEN_MASK = (1 << 64) - 1


def _pages_token(pages) -> int:
    """Order-independent 64-bit token of a collection of page ids.

    A splitmix64-style finalizer over each id, summed mod 2**64.  The sum
    is commutative, so :class:`PageFaultModel` can maintain its page-table
    token incrementally (adding each touch's new pages) and still agree
    with a from-scratch fold over the mapped set — which is what lets
    :mod:`repro.sim.memo` key stage entries on page-table state in O(new
    pages) instead of O(mapped pages) per stage.
    """
    arr = np.fromiter(pages, dtype=np.uint64) if not isinstance(
        pages, np.ndarray
    ) else pages.astype(np.uint64)
    if not len(arr):
        return 0
    x = arr + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return int(x.sum(dtype=np.uint64))


class PageFaultModel:
    """Tracks the shared page table and charges fault service time."""

    def __init__(
        self,
        config: PageFaultConfig,
        layout: BufferLayout,
        mapped: Set[int],
        serialization_heavy: bool = False,
    ):
        self.config = config
        self.layout = layout
        self.mapped = set(mapped)
        self.serialization_heavy = serialization_heavy
        self._token = _pages_token(self.mapped)

    def state_key(self) -> tuple:
        """Hashable digest of the page-table state (for stage memo keys)."""
        return (len(self.mapped), self._token)

    def replay(self, new_pages: np.ndarray) -> None:
        """Re-apply a memoized touch's newly mapped pages."""
        if not len(new_pages):
            return
        self.mapped.update(int(p) for p in new_pages)
        self._token = (self._token + _pages_token(new_pages)) & _TOKEN_MASK

    def touch(self, blocks: np.ndarray, kind: StageKind) -> FaultResult:
        """Record a stage's page touches; GPU first-touches fault.

        CPU first-touches are ordinary minor faults handled locally at
        negligible cost; they still map (and zero) the pages.
        """
        if not self.config.enabled or not len(blocks):
            return FaultResult(0, 0.0, np.empty(0, dtype=np.int64))
        pages = self.layout.pages_of(blocks)
        new_mask = np.fromiter(
            (int(p) not in self.mapped for p in pages), dtype=bool, count=len(pages)
        )
        new_pages = pages[new_mask]
        if not len(new_pages):
            return FaultResult(0, 0.0, np.empty(0, dtype=np.int64))
        self.mapped.update(int(p) for p in new_pages)
        self._token = (self._token + _pages_token(new_pages)) & _TOKEN_MASK

        blocks_per_page = self.layout.blocks_per_page
        zeroed = (
            (new_pages[:, None] * blocks_per_page + np.arange(blocks_per_page)[None, :])
            .reshape(-1)
            .astype(np.int64)
        )
        if kind is not StageKind.GPU_KERNEL:
            return FaultResult(0, 0.0, zeroed)

        if self.serialization_heavy:
            factor = self.config.serialization_penalty
        else:
            factor = 1.0 / self.config.hidden_parallelism
        service = len(new_pages) * self.config.service_latency_s * factor
        return FaultResult(int(len(new_pages)), service, zeroed)
