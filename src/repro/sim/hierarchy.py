"""Cache hierarchies, coherence domains, and the off-chip interface log.

Each core complex (CPU, GPU) owns a two-level hierarchy.  In the discrete
system the two domains are fully separate and the copy engine moves data
between them over PCIe.  In the heterogeneous processor the domains are
coherent: a miss in one domain's hierarchy probes the peer's L2 and, on a
hit, migrates the line on chip instead of going to memory — the mechanism
behind the paper's "Parallel + Cache" kmeans organization.

Every access that does reach memory is appended to the
:class:`OffChipLog`, which Figs. 5 and 9 are computed from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config.components import CacheConfig
from repro.sim.cache import SetAssocCache
from repro.sim.fastcache import FastSetAssocCache
from repro.trace.stream import AccessStream

#: Selectable cache-simulation implementations.  ``reference`` is the
#: plain-Python model of :mod:`repro.sim.cache`; ``fast`` is the
#: bit-exact vectorized twin of :mod:`repro.sim.fastcache` (equivalence
#: enforced by tests/test_engine_equivalence.py and
#: tests/test_cache_vectorized.py).
CACHE_IMPLS = {"reference": SetAssocCache, "fast": FastSetAssocCache}


class Component(enum.Enum):
    """The actors whose memory traffic the study attributes (Figs. 4-6)."""

    CPU = "cpu"
    GPU = "gpu"
    COPY = "copy"


_COMPONENT_CODE = {Component.CPU: 0, Component.GPU: 1, Component.COPY: 2}
COMPONENT_BY_CODE = {code: comp for comp, code in _COMPONENT_CODE.items()}


class OffChipLog:
    """Append-only record of every access that reaches off-chip memory."""

    def __init__(self) -> None:
        self._blocks: List[np.ndarray] = []
        self._is_write: List[np.ndarray] = []
        self._stage: List[np.ndarray] = []
        self._component: List[np.ndarray] = []

    def append(
        self,
        blocks: np.ndarray,
        is_write: np.ndarray,
        stage_ordinal: int,
        component: Component,
    ) -> None:
        count = len(blocks)
        if not count:
            return
        self._blocks.append(np.asarray(blocks, dtype=np.int64))
        self._is_write.append(np.asarray(is_write, dtype=bool))
        self._stage.append(np.full(count, stage_ordinal, dtype=np.int32))
        self._component.append(
            np.full(count, _COMPONENT_CODE[component], dtype=np.int8)
        )

    def __len__(self) -> int:
        return sum(len(part) for part in self._blocks)

    # -- delta capture (stage memoization) -------------------------------------

    def mark(self) -> int:
        """Position token delimiting the appends of one stage's memory step."""
        return len(self._blocks)

    def parts_since(
        self, mark: int
    ) -> Tuple[Tuple[np.ndarray, np.ndarray, int], ...]:
        """The (blocks, is_write, component_code) parts appended since ``mark``.

        The returned arrays are shared references into the log (never
        mutated anywhere), so capturing a delta for :mod:`repro.sim.memo`
        costs no copies; the per-part stage ordinal is deliberately dropped
        — replays re-stamp parts with the replaying stage's ordinal.
        """
        return tuple(
            (self._blocks[i], self._is_write[i], int(self._component[i][0]))
            for i in range(mark, len(self._blocks))
        )

    def replay(
        self,
        parts: Tuple[Tuple[np.ndarray, np.ndarray, int], ...],
        stage_ordinal: int,
    ) -> None:
        """Re-append a captured delta under a (possibly different) ordinal."""
        for blocks, is_write, code in parts:
            self.append(blocks, is_write, stage_ordinal, COMPONENT_BY_CODE[code])

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(blocks, is_write, stage_ordinal, component_code) in log order."""
        if not self._blocks:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty,
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.int32),
                np.empty(0, dtype=np.int8),
            )
        return (
            np.concatenate(self._blocks),
            np.concatenate(self._is_write),
            np.concatenate(self._stage),
            np.concatenate(self._component),
        )

    def counts_by_component(self) -> Dict[Component, int]:
        totals = {comp: 0 for comp in Component}
        for part in zip(self._component, self._blocks):
            codes, blocks = part
            for comp, code in _COMPONENT_CODE.items():
                totals[comp] += int((codes == code).sum())
        return totals


@dataclass
class DomainResult:
    """Summary of running one stage's stream through a domain."""

    requests: int
    offchip_reads: int
    offchip_writes: int
    onchip_transfers: int
    # Block ids of the off-chip accesses, in order (for the optional
    # row-buffer DRAM model); None when the stage produced none.
    offchip_blocks: Optional[np.ndarray] = None


class Domain:
    """A core complex's private cache hierarchy (L1 -> L2 -> memory)."""

    def __init__(
        self,
        name: str,
        l1: CacheConfig,
        l2: CacheConfig,
        impl: str = "reference",
    ):
        if impl not in CACHE_IMPLS:
            raise ValueError(
                f"unknown cache impl {impl!r}; choose from {sorted(CACHE_IMPLS)}"
            )
        self.name = name
        self.impl = impl
        cache_cls = CACHE_IMPLS[impl]
        self.l1 = cache_cls(l1, name=f"{name}.l1")
        self.l2 = cache_cls(l2, name=f"{name}.l2")

    def process(
        self,
        stream: AccessStream,
        log: OffChipLog,
        stage_ordinal: int,
        component: Component,
        peer: Optional["Domain"] = None,
    ) -> DomainResult:
        """Run a stream through L1 then L2, logging off-chip accesses.

        With a coherent ``peer`` (heterogeneous processor), L2 read misses
        that hit in the peer's L2 become on-chip transfers: the line migrates
        to this domain and no off-chip access is logged.
        """
        if not len(stream):
            return DomainResult(0, 0, 0, 0)
        below_l1 = self.l1.access_stream(stream)
        below_l2 = self.l2.access_stream(below_l1)
        if not len(below_l2):
            return DomainResult(len(stream), 0, 0, 0)

        if peer is None:
            blocks, is_write = below_l2.blocks, below_l2.is_write
            transfers = 0
        elif self.impl == "fast":
            blocks, is_write, transfers = self._probe_peer_fast(below_l2, peer)
        else:
            peer_resident = peer.l2.resident_blocks
            keep = np.ones(len(below_l2), dtype=bool)
            transfers = 0
            out_blocks = below_l2.blocks.tolist()
            out_writes = below_l2.is_write.tolist()
            for i in range(len(below_l2)):
                if out_writes[i]:
                    continue  # writebacks always go to memory
                block = out_blocks[i]
                if block in peer_resident:
                    peer.l2.extract(block)
                    peer.l1.extract(block)
                    keep[i] = False
                    transfers += 1
            blocks = below_l2.blocks[keep]
            is_write = below_l2.is_write[keep]

        log.append(blocks, is_write, stage_ordinal, component)
        reads = int((~is_write).sum())
        writes = int(is_write.sum())
        return DomainResult(
            len(stream), reads, writes, transfers, offchip_blocks=blocks
        )

    def _probe_peer_fast(
        self, below_l2: AccessStream, peer: "Domain"
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """Vectorized coherent peer probe, bit-exact with the loop above.

        Only reads probe the peer, and extraction removes the line, so only
        the *first* read of each resident block is an on-chip transfer —
        later reads of the same block (and all writebacks) go to memory.
        """
        resident = peer.l2.resident_array()
        if not len(resident):
            return below_l2.blocks, below_l2.is_write, 0
        candidates = np.nonzero(
            ~below_l2.is_write & np.isin(below_l2.blocks, resident)
        )[0]
        keep = np.ones(len(below_l2), dtype=bool)
        transfers = 0
        taken: set = set()
        for i in candidates.tolist():
            block = int(below_l2.blocks[i])
            if block in taken:
                continue
            taken.add(block)
            peer.l2.extract(block)
            peer.l1.extract(block)
            keep[i] = False
            transfers += 1
        if not transfers:
            return below_l2.blocks, below_l2.is_write, 0
        return below_l2.blocks[keep], below_l2.is_write[keep], transfers

    def invalidate(self, blocks: np.ndarray) -> None:
        """Drop lines in both levels without writeback (DMA overwrite)."""
        unique = self._lookup_list(blocks)
        self.l1.invalidate(unique)
        self.l2.invalidate(unique)

    def flush(self, blocks: np.ndarray) -> List[int]:
        """Write back dirty copies of the given lines (pre-DMA-read flush)."""
        unique = self._lookup_list(blocks)
        written = self.l1.flush(unique)
        written += self.l2.flush(unique)
        return written

    def _lookup_list(self, blocks: np.ndarray):
        """Sorted unique lookup blocks, in whichever form the impl prefers.

        Copy streams are usually already sorted runs of block ids, so the
        hash-based ``np.unique`` is skipped when a cheap monotonicity check
        passes.  The fast impl narrows lookups vectorized and prefers the
        ndarray; the reference loop is faster over a plain list.
        """
        arr = np.asarray(blocks, dtype=np.int64)
        if len(arr) > 1 and not np.all(arr[1:] > arr[:-1]):
            arr = np.unique(arr)
        if self.impl == "fast":
            return arr
        return arr.tolist()


class CacheSystem:
    """Both domains plus the copy-engine path and the off-chip log."""

    def __init__(
        self,
        cpu_l1: CacheConfig,
        cpu_l2: CacheConfig,
        gpu_l1: CacheConfig,
        gpu_l2: CacheConfig,
        coherent: bool,
        impl: str = "reference",
    ):
        self.cpu = Domain("cpu", cpu_l1, cpu_l2, impl=impl)
        self.gpu = Domain("gpu", gpu_l1, gpu_l2, impl=impl)
        self.coherent = coherent
        self.impl = impl
        self.log = OffChipLog()

    def domain_for(self, component: Component) -> Domain:
        if component is Component.CPU:
            return self.cpu
        if component is Component.GPU:
            return self.gpu
        raise ValueError("the copy engine has no cache domain")

    def peer_of(self, component: Component) -> Optional[Domain]:
        if not self.coherent:
            return None
        return self.gpu if component is Component.CPU else self.cpu

    def process_compute(
        self, stream: AccessStream, stage_ordinal: int, component: Component
    ) -> DomainResult:
        """Run a CPU or GPU stage's stream through its domain."""
        domain = self.domain_for(component)
        return domain.process(
            stream, self.log, stage_ordinal, component, peer=self.peer_of(component)
        )

    def process_copy(
        self,
        src_blocks: np.ndarray,
        dst_blocks: np.ndarray,
        stage_ordinal: int,
    ) -> DomainResult:
        """Run a DMA copy: read source blocks, write destination blocks.

        Coherent source lines are flushed from caches first (their writebacks
        are attributed to the owning core's traffic); destination lines are
        invalidated in all caches.  The DMA engine itself does not allocate
        in any cache — every copied block is an off-chip read plus an
        off-chip write attributed to the COPY component.
        """
        flushed = 0
        for domain, comp in ((self.cpu, Component.CPU), (self.gpu, Component.GPU)):
            written = domain.flush(src_blocks)
            if written:
                arr = np.asarray(written, dtype=np.int64)
                self.log.append(arr, np.ones(len(arr), dtype=bool), stage_ordinal, comp)
                flushed += len(written)
        self.cpu.invalidate(dst_blocks)
        self.gpu.invalidate(dst_blocks)

        self.log.append(
            src_blocks, np.zeros(len(src_blocks), dtype=bool), stage_ordinal, Component.COPY
        )
        self.log.append(
            dst_blocks, np.ones(len(dst_blocks), dtype=bool), stage_ordinal, Component.COPY
        )
        return DomainResult(
            requests=len(src_blocks) + len(dst_blocks),
            offchip_reads=len(src_blocks),
            offchip_writes=len(dst_blocks) + flushed,
            onchip_transfers=0,
            offchip_blocks=np.concatenate([src_blocks, dst_blocks])
            if len(src_blocks) or len(dst_blocks)
            else None,
        )
