"""MESI cache-coherence protocol model.

The heterogeneous processor of the paper depends on CPU-GPU cache
coherence (its refs [15, 26, 30]); the main simulator approximates it with
peer-L2 probing and silent line migration (see
:class:`repro.sim.hierarchy.Domain`).  This module provides the full
protocol as a standalone reference model: per-line MESI states across any
number of caches, with the bus transactions each access generates.

It serves three purposes:

* documentation — the precise protocol the fast path approximates;
* verification — property tests assert the protocol invariants (single
  writer, no stale sharers) and that the fast path's off-chip traffic
  matches the reference on producer-consumer patterns;
* experimentation — coherence-traffic studies (invalidations per write,
  cache-to-cache transfer rates) that the paper's Section VI directions
  would need.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class MesiState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class BusOp(enum.Enum):
    """Transactions observed on the coherence interconnect."""

    READ_MISS_MEMORY = "read miss served by memory"
    READ_MISS_CACHE = "read miss served cache-to-cache"
    WRITE_MISS_MEMORY = "write miss served by memory"
    WRITE_MISS_CACHE = "write miss served cache-to-cache"
    UPGRADE = "invalidate sharers for write (BusUpgr)"
    WRITEBACK = "dirty line written to memory"


@dataclass
class CoherenceStats:
    """Counts of each bus transaction."""

    counts: Dict[BusOp, int] = field(default_factory=lambda: {op: 0 for op in BusOp})

    def record(self, op: BusOp) -> None:
        self.counts[op] += 1

    @property
    def memory_accesses(self) -> int:
        """Transactions that reach off-chip memory."""
        return (
            self.counts[BusOp.READ_MISS_MEMORY]
            + self.counts[BusOp.WRITE_MISS_MEMORY]
            + self.counts[BusOp.WRITEBACK]
        )

    @property
    def cache_to_cache_transfers(self) -> int:
        return (
            self.counts[BusOp.READ_MISS_CACHE]
            + self.counts[BusOp.WRITE_MISS_CACHE]
        )


class MesiDirectory:
    """MESI states for every (cache, line) pair, plus the bus.

    Caches are identified by index.  Capacity is not modelled here — this
    is the *protocol* reference; pair it with capacity models separately.
    """

    def __init__(self, num_caches: int):
        if num_caches < 1:
            raise ValueError("need at least one cache")
        self.num_caches = num_caches
        self._state: Dict[int, List[MesiState]] = {}
        self.stats = CoherenceStats()

    # -- queries -------------------------------------------------------------

    def state(self, cache: int, line: int) -> MesiState:
        self._check_cache(cache)
        states = self._state.get(line)
        return states[cache] if states else MesiState.INVALID

    def holders(self, line: int) -> Tuple[int, ...]:
        states = self._state.get(line)
        if not states:
            return ()
        return tuple(
            i for i, s in enumerate(states) if s is not MesiState.INVALID
        )

    def owner(self, line: int) -> Optional[int]:
        """The cache holding the line in M or E, if any."""
        states = self._state.get(line)
        if not states:
            return None
        for i, s in enumerate(states):
            if s in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                return i
        return None

    # -- protocol actions ------------------------------------------------------

    def _check_cache(self, cache: int) -> None:
        if not 0 <= cache < self.num_caches:
            raise ValueError(f"unknown cache {cache}")

    def _states(self, line: int) -> List[MesiState]:
        if line not in self._state:
            self._state[line] = [MesiState.INVALID] * self.num_caches
        return self._state[line]

    def read(self, cache: int, line: int) -> Optional[BusOp]:
        """Processor read; returns the bus transaction it caused (if any)."""
        self._check_cache(cache)
        states = self._states(line)
        mine = states[cache]
        if mine is not MesiState.INVALID:
            return None  # hit, any valid state

        others = [i for i, s in enumerate(states) if s is not MesiState.INVALID]
        if not others:
            states[cache] = MesiState.EXCLUSIVE
            self.stats.record(BusOp.READ_MISS_MEMORY)
            return BusOp.READ_MISS_MEMORY
        # Another cache supplies the data; everyone valid drops to SHARED.
        # A MODIFIED owner implicitly writes back (modelled as part of the
        # cache-to-cache transfer, per common MESI formulations).
        for i in others:
            states[i] = MesiState.SHARED
        states[cache] = MesiState.SHARED
        self.stats.record(BusOp.READ_MISS_CACHE)
        return BusOp.READ_MISS_CACHE

    def write(self, cache: int, line: int) -> Optional[BusOp]:
        """Processor write; returns the bus transaction it caused (if any)."""
        self._check_cache(cache)
        states = self._states(line)
        mine = states[cache]
        if mine is MesiState.MODIFIED:
            return None  # silent
        if mine is MesiState.EXCLUSIVE:
            states[cache] = MesiState.MODIFIED
            return None  # silent upgrade
        op: BusOp
        others = [
            i
            for i, s in enumerate(states)
            if i != cache and s is not MesiState.INVALID
        ]
        if mine is MesiState.SHARED:
            op = BusOp.UPGRADE
        elif others:
            op = BusOp.WRITE_MISS_CACHE
        else:
            op = BusOp.WRITE_MISS_MEMORY
        for i in others:
            states[i] = MesiState.INVALID
        states[cache] = MesiState.MODIFIED
        self.stats.record(op)
        return op

    def evict(self, cache: int, line: int) -> Optional[BusOp]:
        """Capacity eviction; dirty lines write back."""
        self._check_cache(cache)
        states = self._states(line)
        mine = states[cache]
        states[cache] = MesiState.INVALID
        if mine is MesiState.MODIFIED:
            self.stats.record(BusOp.WRITEBACK)
            return BusOp.WRITEBACK
        return None

    # -- invariants ----------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any MESI invariant is violated."""
        for line, states in self._state.items():
            m = sum(1 for s in states if s is MesiState.MODIFIED)
            e = sum(1 for s in states if s is MesiState.EXCLUSIVE)
            shared = sum(1 for s in states if s is MesiState.SHARED)
            assert m <= 1, f"line {line}: multiple MODIFIED holders"
            assert e <= 1, f"line {line}: multiple EXCLUSIVE holders"
            if m or e:
                assert m + e == 1 and shared == 0, (
                    f"line {line}: owner coexists with sharers"
                )
