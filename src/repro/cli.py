"""Command-line interface: ``repro <command>``.

Commands::

    repro show-config                 # Table I system parameters
    repro list [--suite SUITE]        # all benchmarks + Table II flags
    repro run [BENCHMARK] [--scale S] # one benchmark (or the full sweep)
    repro table2                      # regenerate Table II
    repro fig3 ... fig9               # regenerate a figure
    repro validate                    # Section V-A/V-B validations
    repro ablations                   # ablation studies
    repro cache [--clear]             # inspect the persistent result cache
    repro bench [--compare BASE]      # engine perf report + regression gate
    repro serve [--port P --jobs N]   # async HTTP/JSON sweep service
    repro loadtest [--requests N]     # hammer a server, check dedup/latency
    repro lint [BENCHMARK...] [--fix] # static pipeline verification
    repro advise [BENCHMARK] [--static]  # rank optimization opportunities
    repro trace BENCHMARK             # run with the tracing layer attached
    repro all [--scale S]             # everything above

``repro lint`` exits 0 when no finding reaches the ``--fail-on``
threshold, 1 when one does, and 2 on usage errors (unknown benchmark or
unreadable spec file) — see docs/LINTING.md.

``repro trace`` simulates one benchmark with the event-tracing layer and
invariant monitor attached (docs/TRACING.md): ``--system discrete`` runs
the copy version on the discrete-GPU machine, ``--system hsa`` the
limited-copy version on the heterogeneous processor.  ``-o out.json``
writes a Chrome ``trace_event`` file (open in https://ui.perfetto.dev);
``--format jsonl`` writes the compact JSONL stream instead.  Exits 1 if
any conservation invariant was violated, 2 on usage errors.

Every simulating command takes ``--jobs N`` (0 = all cores, 1 = serial) to
fan the sweep out over a process pool, and ``--cache-dir``/``--no-cache``
to control the persistent result cache (default ``~/.cache/repro-sweeps``,
or ``$REPRO_CACHE_DIR``).  A repeated invocation with a warm cache
simulates nothing and reproduces identical output.

``repro serve`` turns the sweep runner into a long-running service
(docs/SERVING.md): an asyncio HTTP/JSON API accepting simulation, sweep,
and advisor jobs — validated with the lint preflight, deduplicated by
content hash against in-flight work, dispatched through the fault
supervisor, and answered from the shared result cache when warm.
``repro loadtest`` hammers such a server with concurrent duplicate-and-
distinct jobs and (with ``--check``) asserts dedup and latency bounds.

Sweeps are fault-tolerant (docs/SWEEPS.md): a failing simulation is
retried (``--max-retries``, capped exponential backoff), a hung worker is
killed after ``--task-timeout`` seconds, and a crashed process pool is
rebuilt.  Tasks that still fail never abort the sweep — every completed
result is printed and cached, the failures are reported to stderr, and the
command exits with status 3 (partial) instead of 0 (clean).
``--fail-fast`` stops dispatching new work after the first exhausted task.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config.system import TABLE_I
from repro.experiments import (
    ablations,
    advisor,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    table2,
    validation,
)
from repro.experiments.executors import BACKENDS as EXECUTOR_BACKENDS
from repro.experiments.report import format_mapping, format_table
from repro.experiments.runner import (
    COPY,
    DEFAULT_BENCH_SCALE,
    LIMITED,
    FaultPolicy,
    SweepError,
    SweepRunner,
)
from repro.sim.engine import SimOptions
from repro.sim.hierarchy import Component
from repro.sim.resultcache import ResultCache, default_cache_dir
from repro.config.system import discrete_gpu_system
from repro.workloads.registry import (
    SUITES,
    all_specs,
    get,
    simulatable_specs,
    suite_specs,
)

#: Exit status of a sweep that completed with task failures: the results
#: that did finish were printed/cached, but the run is not clean.
EXIT_PARTIAL = 3

FIGURES = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}


def _options(args: argparse.Namespace) -> SimOptions:
    return SimOptions(
        scale=args.scale,
        seed=args.seed,
        engine_impl=getattr(args, "engine", "fast"),
        stage_memo=getattr(args, "stage_memo", "auto"),
    )


def _cache_dir(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None) or default_cache_dir()


def _fault_policy(args: argparse.Namespace) -> FaultPolicy:
    return FaultPolicy(
        max_retries=getattr(args, "max_retries", 2),
        task_timeout_s=getattr(args, "task_timeout", None),
        fail_fast=getattr(args, "fail_fast", False),
    )


def _hosts(args: argparse.Namespace) -> tuple:
    raw = getattr(args, "hosts", None)
    if not raw:
        return ()
    return tuple(h.strip() for h in raw.split(",") if h.strip())


def _runner(args: argparse.Namespace) -> SweepRunner:
    backend = getattr(args, "backend", "local")
    hosts = _hosts(args)
    if backend == "ssh" and not hosts:
        raise SystemExit("repro: --backend ssh requires --hosts H1,H2,...")
    return SweepRunner(
        options=_options(args),
        parallel=getattr(args, "jobs", 1),
        cache_dir=_cache_dir(args),
        verbose=True,
        preflight=getattr(args, "preflight", False),
        fault_policy=_fault_policy(args),
        backend=backend,
        hosts=hosts,
    )


def _report_failures(runner: SweepRunner) -> int:
    """Print outstanding task failures; exit status for the command."""
    failures = runner.metrics_registry.failures
    if not failures:
        return 0
    print(f"sweep: {len(failures)} task(s) failed:", file=sys.stderr)
    for failure in failures:
        print(f"  {failure.describe()}", file=sys.stderr)
    return EXIT_PARTIAL


def _render_with_failures(runner: SweepRunner, render) -> int:
    """Run a figure/validation renderer against a fault-tolerant runner."""
    try:
        print(render())
    except SweepError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _report_failures(runner)
        return EXIT_PARTIAL
    return _report_failures(runner)


def cmd_show_config(args: argparse.Namespace) -> int:
    print(format_mapping("Table I: Heterogeneous system parameters", TABLE_I))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    specs = suite_specs(args.suite) if args.suite else all_specs()
    rows = [
        (
            s.full_name,
            s.simulatable,
            s.pc_comm,
            s.pipe_parallel,
            s.regular_pc,
            s.irregular,
            s.sw_queue,
            s.description,
        )
        for s in specs
    ]
    print(
        format_table(
            (
                "Benchmark",
                "Sim",
                "P-C",
                "Paral",
                "Reg",
                "Irreg",
                "SWQ",
                "Description",
            ),
            rows,
            title=f"Benchmarks ({len(rows)})",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args)
    if args.benchmark is None:
        # Full 46x2 sweep: the workload every figure shares.  With --jobs
        # this is the headline parallel path; a warm cache replays it
        # without simulating anything.  Failed tasks don't abort the
        # sweep: completed results are printed, failures are reported to
        # stderr, and the exit status distinguishes partial from clean.
        specs = sorted(simulatable_specs(), key=lambda s: s.full_name)
        runner.sweep(specs)
        rows = []
        for spec in specs:
            copy_result = runner.try_result(spec, COPY)
            limited_result = runner.try_result(spec, LIMITED)
            ratio = "-"
            if copy_result and limited_result and copy_result.roi_s:
                ratio = f"{limited_result.roi_s / copy_result.roi_s:.3f}"
            rows.append(
                (
                    spec.full_name,
                    f"{copy_result.roi_s:.6g}" if copy_result else "FAILED",
                    f"{limited_result.roi_s:.6g}" if limited_result else "FAILED",
                    ratio,
                )
            )
        print(
            format_table(
                ("Benchmark", "copy roi_s", "limited roi_s", "lc/copy"),
                rows,
                title=f"Sweep ({len(rows)} benchmarks x 2 versions)",
            )
        )
        # The sweep metrics line goes to stderr (verbose runner) so stdout
        # stays byte-identical between cold and warm-cache invocations.
        return _report_failures(runner)
    spec = get(args.benchmark)
    try:
        runner.pair(spec)
    except SweepError:
        pass  # failures reported below; print whichever version completed
    for label, version in (("copy", COPY), ("limited-copy", LIMITED)):
        result = runner.try_result(spec, version)
        if result is None:
            continue
        print(f"\n{spec.full_name} [{label}] on {result.system_kind}")
        summary = result.summary()
        summary["copy_exclusive_share"] = (
            result.exclusive_time(Component.COPY) / result.roi_s if result.roi_s else 0
        )
        print(format_mapping("summary", {k: f"{v:.6g}" for k, v in summary.items()}))
    return _report_failures(runner)


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(getattr(args, "cache_dir", None) or default_cache_dir())
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.root}")
        return 0
    entries = len(cache)
    size_mb = cache.size_bytes() / (1024 * 1024)
    print(format_mapping(
        "Persistent sweep cache",
        {
            "directory": str(cache.root),
            "entries": str(entries),
            "size": f"{size_mb:.1f} MB",
        },
    ))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Measure engine performance; optionally gate against a baseline.

    Exit status: 0 on success (and no regression), 1 when ``--compare``
    found a regression, 2 on usage errors (unreadable or schema-invalid
    baseline, bad tolerance).
    """
    import json
    from pathlib import Path

    from repro.bench import (
        BenchConfig,
        collect_report,
        compare_reports,
        summarize,
        validate_report,
        write_report,
    )

    if args.tolerance <= 0:
        print(
            f"repro bench: --tolerance must be positive, got {args.tolerance}",
            file=sys.stderr,
        )
        return 2
    if args.reps < 1:
        print(
            f"repro bench: --reps must be at least 1, got {args.reps}",
            file=sys.stderr,
        )
        return 2
    baseline = None
    if args.compare:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro bench: cannot read {args.compare}: {exc}", file=sys.stderr)
            return 2
        problems = validate_report(baseline)
        if problems:
            print(f"repro bench: invalid baseline {args.compare}:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 2

    config = BenchConfig(
        scale=args.scale,
        seed=args.seed,
        reps=args.reps,
        quick=args.quick,
        stage_memo=args.stage_memo,
    )
    report = collect_report(config)
    print(summarize(report))
    if args.output:
        write_report(report, Path(args.output))
        print(f"wrote {args.output}")

    if baseline is not None:
        comparison = compare_reports(baseline, report, args.tolerance)
        if comparison.regressions:
            print(
                f"repro bench: {len(comparison.regressions)} regression(s) "
                f"beyond {args.tolerance:.2f}x tolerance:",
                file=sys.stderr,
            )
            for delta in comparison.regressions:
                print(f"  {delta.describe()}", file=sys.stderr)
            return 1
        print(
            f"no regressions across {len(comparison.compared)} shared "
            f"metric(s) at {args.tolerance:.2f}x tolerance"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import ServeApp, ServeConfig

    backend = getattr(args, "backend", "local")
    hosts = _hosts(args)
    if backend == "ssh" and not hosts:
        raise SystemExit("repro: --backend ssh requires --hosts H1,H2,...")
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        concurrency=args.concurrency,
        cache_dir=getattr(args, "cache_dir", None),
        no_cache=getattr(args, "no_cache", False),
        default_scale=args.default_scale,
        max_retries=args.max_retries,
        task_timeout_s=args.task_timeout,
        lint=not args.no_lint,
        backend=backend,
        hosts=hosts,
    )
    app = ServeApp(config)

    def announce(ready: ServeApp) -> None:
        print(
            f"repro serve: listening on http://{config.host}:{ready.port} "
            f"(workers={max(1, config.concurrency)}, "
            f"pool jobs={ready._health()['pool_jobs']}, "
            f"cache={'off' if app.cache is None else app.cache.root})",
            file=sys.stderr,
        )

    try:
        asyncio.run(app.run_until_shutdown(on_ready=announce))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", file=sys.stderr)
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio
    import json as _json
    from urllib.parse import urlparse

    from repro.serve import LoadTestConfig, ServeClient, check_report, run_loadtest
    from repro.serve.loadtest import loadtest_in_process, render_report

    if not 0.0 <= args.duplicate_ratio <= 1.0:
        print(
            f"repro loadtest: --duplicate-ratio must be in [0, 1], "
            f"got {args.duplicate_ratio}",
            file=sys.stderr,
        )
        return 2
    if args.requests < 1:
        print(
            f"repro loadtest: --requests must be >= 1, got {args.requests}",
            file=sys.stderr,
        )
        return 2
    config = LoadTestConfig(
        requests=args.requests,
        duplicate_ratio=args.duplicate_ratio,
        concurrency=args.concurrency,
        benchmarks=tuple(args.benchmark) if args.benchmark else ("rodinia/kmeans",),
        scale=args.scale,
        warm_requests=args.warm_requests,
        seed=args.seed,
        job_timeout_s=args.job_timeout,
    )
    if args.url:
        target = urlparse(args.url if "//" in args.url else f"//{args.url}")
        if not target.hostname or not target.port:
            print(
                f"repro loadtest: cannot parse host:port from {args.url!r}",
                file=sys.stderr,
            )
            return 2
        client = ServeClient(
            target.hostname, target.port, timeout_s=config.job_timeout_s
        )
        report = asyncio.run(run_loadtest(client, config))
    else:
        report = loadtest_in_process(config)
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    if args.check:
        problems = check_report(report, warm_p50_bound_s=args.warm_p50_bound)
        if problems:
            print(
                f"repro loadtest: {len(problems)} check(s) failed:",
                file=sys.stderr,
            )
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("loadtest: dedup and latency checks passed")
    return 0


def _lint_targets(args: argparse.Namespace):
    """The (pipeline, spec) pairs a lint invocation covers, in report
    order: copy form then renamed limited-copy form for each benchmark —
    the same shapes :func:`repro.analysis.lint_benchmark` lints."""
    from repro.pipeline.transforms import remove_copies
    from repro.workloads.loader import pipeline_from_file

    pairs = []
    if args.spec:
        pipeline = pipeline_from_file(args.spec)
        limited = remove_copies(pipeline)
        pairs.append((pipeline, None))
        pairs.append((
            limited.with_stages(
                limited.stages, name=f"{pipeline.name} [limited-copy]"
            ),
            None,
        ))
        return pairs
    specs = (
        [get(name) for name in args.benchmark]
        if args.benchmark
        else [s for s in simulatable_specs()]
    )
    for spec in specs:
        if not spec.simulatable:
            continue
        pipeline = spec.pipeline()
        limited = remove_copies(pipeline)
        pairs.append((pipeline, spec))
        pairs.append((
            limited.with_stages(
                limited.stages, name=f"{pipeline.name} [limited-copy]"
            ),
            spec,
        ))
    return pairs


def cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis import (
        LintReport,
        Severity,
        lint_pipeline,
        render_json,
        render_text,
        report_to_dict,
    )
    from repro.analysis.dataflow import apply_fixes
    from repro.analysis.dataflow.fixes import fix_summary

    try:
        fail_on = Severity.parse(args.fail_on)
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    try:
        pairs = _lint_targets(args)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    fix_records = []
    if args.fix:
        fixed_pairs = []
        for pipeline, spec in pairs:
            result = apply_fixes(pipeline, spec)
            fix_records.append((pipeline.name, result))
            fixed_pairs.append((result.pipeline, spec))
        pairs = fixed_pairs

    report = LintReport()
    for pipeline, spec in pairs:
        report.merge(
            lint_pipeline(pipeline, spec, opportunities=args.opportunities)
        )

    if args.format == "json":
        payload = report_to_dict(report, fail_on=fail_on)
        if args.fix:
            payload["fixes"] = [
                {
                    "pipeline": name,
                    "applied": [
                        {
                            "rule": f.rule,
                            "kind": f.kind,
                            "stages": list(f.stages),
                            "description": f.description,
                        }
                        for f in result.applied
                    ],
                    "skipped": [
                        {
                            "rule": f.rule,
                            "kind": f.kind,
                            "stages": list(f.stages),
                            "description": f.description,
                        }
                        for f in result.skipped
                    ],
                }
                for name, result in fix_records
                if result.applied or result.skipped
            ]
        print(_json.dumps(payload, indent=2))
    else:
        if args.fix:
            applied_total = 0
            for name, result in fix_records:
                if result.applied or result.skipped:
                    print(f"fix: {name}:")
                    for line in fix_summary(result).splitlines():
                        print(f"  {line}")
                applied_total += len(result.applied)
            print(
                f"fix: applied {applied_total} fix(es) across "
                f"{len(fix_records)} pipeline(s)"
            )
        print(render_text(report, fail_on=fail_on))
    return 0 if report.clean(fail_on) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.config.system import heterogeneous_processor
    from repro.pipeline.transforms import remove_copies
    from repro.sim.engine import simulate
    from repro.sim.observe import (
        InvariantMonitor,
        TraceRecorder,
        event_to_dict,
        write_chrome_trace,
    )
    from repro.sim.timeline import render_trace_timeline

    try:
        spec = get(args.benchmark)
    except KeyError as exc:
        # A bare name shared by several suites is fine for a quick trace:
        # take the first match (suite order) rather than erroring out.
        matches = sorted(
            s.full_name
            for s in all_specs()
            if s.name == args.benchmark and s.simulatable
        )
        if not matches:
            print(f"repro trace: {exc.args[0]}", file=sys.stderr)
            return 2
        spec = get(matches[0])
        if len(matches) > 1:
            print(
                f"repro trace: {args.benchmark!r} is ambiguous "
                f"({', '.join(matches)}); tracing {matches[0]}",
                file=sys.stderr,
            )
    if not spec.simulatable:
        print(
            f"repro trace: {spec.full_name} has no pipeline model",
            file=sys.stderr,
        )
        return 2
    pipeline = spec.pipeline()
    if args.system == "hsa":
        pipeline = remove_copies(pipeline)
        system = heterogeneous_processor()
    else:
        system = discrete_gpu_system()

    recorder = TraceRecorder()
    sinks = [recorder]
    monitor = None
    if not args.no_check:
        monitor = InvariantMonitor(mode="record")
        sinks.append(monitor)
    # The cache/runner path is bypassed on purpose: replayed results carry
    # no events, and tracing must watch a live engine.
    result = simulate(pipeline, system, _options(args), sinks=sinks)

    label = f"{spec.full_name} [{args.system}]"
    if args.output:
        if args.format == "jsonl":
            import json as _json

            with open(args.output, "w", encoding="utf-8") as handle:
                for event in recorder.events:
                    _json.dump(event_to_dict(event), handle, separators=(",", ":"))
                    handle.write("\n")
        else:
            write_chrome_trace(
                args.output,
                recorder.events,
                name=label,
                other_data={
                    "system": result.system_kind,
                    "roi_s": result.roi_s,
                },
            )
        print(f"wrote {len(recorder.events)} events to {args.output}")
    else:
        print(render_trace_timeline(recorder.events, title=label))
        print(f"\n{len(recorder.events)} events traced")
    if monitor is not None:
        if result.violations:
            print(
                f"INVARIANT VIOLATIONS ({len(result.violations)}):",
                file=sys.stderr,
            )
            for violation in result.violations:
                print(
                    f"  [{violation.rule}] {violation.message}", file=sys.stderr
                )
            return 1
        print("invariants: all clean", file=sys.stderr)
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    print(table2.render())
    return 0


def cmd_advise(args: argparse.Namespace) -> int:
    if args.static:
        from repro.analysis.dataflow import render_static_table, static_advice

        try:
            if args.benchmark:
                print(static_advice(get(args.benchmark)).render())
            else:
                specs = sorted(
                    simulatable_specs(), key=lambda s: s.full_name
                )
                print(render_static_table([static_advice(s) for s in specs]))
        except KeyError as exc:
            print(f"repro advise: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0
    if args.benchmark is None:
        print(
            "repro advise: a benchmark name is required unless --static "
            "is given (the static advisor can sweep the whole registry; "
            "the simulation-backed advisor runs one benchmark)",
            file=sys.stderr,
        )
        return 2
    runner = _runner(args)
    return _render_with_failures(
        runner,
        lambda: advisor.advise_benchmark(args.benchmark, runner).render(),
    )


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.sim.timeline import render_stage_table, render_timeline

    spec = get(args.benchmark)
    runner = _runner(args)
    version = "limited-copy" if args.limited else "copy"
    try:
        result = runner.run(spec, version)
    except SweepError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _report_failures(runner)
        return EXIT_PARTIAL
    print(render_timeline(result))
    print()
    print(render_stage_table(result))
    return 0


def cmd_run_spec(args: argparse.Namespace) -> int:
    from repro.config.system import heterogeneous_processor
    from repro.pipeline.transforms import remove_copies
    from repro.sim.engine import simulate
    from repro.sim.timeline import render_timeline
    from repro.workloads.loader import pipeline_from_file

    pipeline = pipeline_from_file(args.spec)
    options = _options(args)
    baseline = simulate(pipeline, discrete_gpu_system(), options)
    ported = simulate(
        remove_copies(pipeline), heterogeneous_processor(), options
    )
    print(render_timeline(baseline))
    print()
    print(render_timeline(ported))
    print(
        f"\nporting changes run time by "
        f"{ported.roi_s / baseline.roi_s - 1.0:+.1%}"
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.sim.serialize import result_to_json

    spec = get(args.benchmark)
    runner = _runner(args)
    version = "limited-copy" if args.limited else "copy"
    try:
        result = runner.run(spec, version)
    except SweepError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _report_failures(runner)
        return EXIT_PARTIAL
    text = result_to_json(result, include_log=args.include_log)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    print(fig3.render(_options(args)))
    return 0


def cmd_figure(module):
    def handler(args: argparse.Namespace) -> int:
        runner = _runner(args)
        return _render_with_failures(runner, lambda: module.render(runner))

    return handler


def cmd_validate(args: argparse.Namespace) -> int:
    runner = _runner(args)
    return _render_with_failures(runner, lambda: validation.render(runner))


def cmd_ablations(args: argparse.Namespace) -> int:
    print(ablations.render(_options(args)))
    return 0


def cmd_all(args: argparse.Namespace) -> int:
    runner = _runner(args)
    try:
        print(format_mapping("Table I", TABLE_I))
        print()
        print(table2.render())
        print()
        print(fig3.render(_options(args)))
        for name, module in FIGURES.items():
            print()
            print(module.render(runner))
        print()
        print(validation.render(runner))
        print()
        print(ablations.render(_options(args)))
    except SweepError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        _report_failures(runner)
        return EXIT_PARTIAL
    return _report_failures(runner)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'GPU Computing Pipeline "
        "Inefficiencies and Optimization Opportunities in Heterogeneous "
        "CPU-GPU Processors' (IISWC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, handler, help_text):
        p = sub.add_parser(name, help=help_text)
        p.add_argument(
            "--scale",
            type=float,
            default=DEFAULT_BENCH_SCALE,
            help="footprint/cache scale factor (1.0 = paper scale)",
        )
        p.add_argument("--seed", type=int, default=0, help="trace seed")
        p.add_argument(
            "--engine",
            choices=("reference", "fast"),
            default="fast",
            help="cache-simulation implementation (default: fast, the "
            "vectorized engine; 'reference' opts back into the "
            "bit-identical readable baseline — see docs/BENCHMARKING.md)",
        )
        p.add_argument(
            "--stage-memo",
            choices=("auto", "on", "off"),
            default="auto",
            help="stage-level memoization: replay repeated (stage, cache "
            "state) executions instead of re-simulating them; 'auto' "
            "enables it with the fast engine (default), results are "
            "bit-identical either way (docs/MODELING.md)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=0,
            help="parallel sweep workers (0 = all cores, 1 = serial)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            help="persistent result-cache directory "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the persistent result cache",
        )
        p.add_argument(
            "--preflight",
            action="store_true",
            help="statically lint every pipeline before simulating and "
            "refuse to run on error-level findings",
        )
        p.add_argument(
            "--max-retries",
            type=int,
            default=2,
            metavar="N",
            help="retry each failing simulation up to N times with capped "
            "exponential backoff (default: 2; 0 disables retries)",
        )
        p.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="kill and retry any single simulation exceeding this "
            "wall-clock budget (parallel workers only; default: none)",
        )
        p.add_argument(
            "--fail-fast",
            action="store_true",
            help="stop dispatching new work once a task exhausts its "
            "retries; results finished before the failure are kept",
        )
        p.add_argument(
            "--backend",
            choices=EXECUTOR_BACKENDS,
            default="local",
            help="executor backend for parallel sweeps: 'local' shares a "
            "process pool, 'subprocess' isolates each task in its own "
            "worker child, 'ssh' fans tasks out over --hosts "
            "(docs/SWEEPS.md); results are bit-identical across backends",
        )
        p.add_argument(
            "--hosts",
            default=None,
            metavar="H1,H2,...",
            help="comma-separated remote hosts for --backend ssh "
            "(each needs python3 with the repro package importable)",
        )
        p.set_defaults(handler=handler)
        return p

    add("show-config", cmd_show_config, "print Table I")
    list_p = add("list", cmd_list, "list benchmarks and Table II flags")
    list_p.add_argument("--suite", choices=SUITES, default=None)
    run_p = add("run", cmd_run,
                "simulate one benchmark (or, with no argument, the full "
                "46x2 sweep), both versions")
    run_p.add_argument("benchmark", nargs="?", default=None,
                       help="benchmark name, e.g. rodinia/kmeans; omit to "
                       "run the whole sweep")
    add("table2", cmd_table2, "regenerate Table II")
    lint_p = sub.add_parser(
        "lint",
        help="statically verify pipelines (hazards, memory spaces, Table II)",
    )
    lint_p.add_argument(
        "benchmark", nargs="*", default=None,
        help="benchmark names to lint; omit to lint the full registry")
    lint_p.add_argument(
        "--spec", default=None,
        help="lint a declarative JSON workload file instead of registered "
        "benchmarks")
    lint_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)")
    lint_p.add_argument(
        "--fail-on", default="error", metavar="SEVERITY",
        help="exit 1 when a finding at or above this severity exists "
        "(error, warn, info; default: error)")
    lint_p.add_argument(
        "--fix", action="store_true",
        help="apply safe autofixes (drop dead copies, fuse copy chains) "
        "before linting; the report reflects the fixed pipelines")
    lint_p.add_argument(
        "--opportunities", action="store_true",
        help="also run the RPL303-305 opportunity rules (overlap-blocking "
        "serialization, migration candidates, cache-coordination "
        "conflicts) — info-level headroom reports, not defects")
    lint_p.set_defaults(handler=cmd_lint)
    trace_p = add(
        "trace",
        cmd_trace,
        "simulate one benchmark with event tracing + invariant monitoring",
    )
    trace_p.add_argument("benchmark", help="benchmark name, e.g. lonestar/bfs")
    trace_p.add_argument(
        "--system", choices=("discrete", "hsa"), default="discrete",
        help="discrete: copy version on the discrete-GPU machine; hsa: "
        "limited-copy version on the heterogeneous processor")
    trace_p.add_argument(
        "-o", "--output", default=None,
        help="output file; omit to print an ASCII timeline instead")
    trace_p.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="chrome: trace_event JSON for Perfetto/chrome://tracing "
        "(default); jsonl: one event per line")
    trace_p.add_argument(
        "--no-check", action="store_true",
        help="skip the conservation-invariant monitor")
    cache_p = add("cache", cmd_cache, "inspect the persistent result cache")
    cache_p.add_argument("--clear", action="store_true",
                         help="delete every cached result")
    bench_p = sub.add_parser(
        "bench",
        help="measure engine performance and gate against a baseline "
        "(docs/BENCHMARKING.md)",
    )
    bench_p.add_argument(
        "--scale", type=float, default=DEFAULT_BENCH_SCALE,
        help="footprint/cache scale factor (1.0 = paper scale)")
    bench_p.add_argument("--seed", type=int, default=0, help="trace seed")
    bench_p.add_argument(
        "--reps", type=int, default=5,
        help="repetitions per timed metric (default: 5)")
    bench_p.add_argument(
        "--quick", action="store_true",
        help="smoke mode: at most 2 reps and only the 8-benchmark sweep "
        "subset (metric keys stay comparable to a full baseline)")
    bench_p.add_argument(
        "--stage-memo",
        choices=("auto", "on", "off"),
        default="auto",
        help="stage-level memoization for the measured runs (default: "
        "auto = on with the fast engine)")
    bench_p.add_argument(
        "--compare", default=None, metavar="BASELINE.json",
        help="compare against a saved report; exit 1 when any shared "
        "metric's p50 regresses beyond --tolerance")
    bench_p.add_argument(
        "--tolerance", type=float, default=1.5,
        help="multiplicative regression tolerance on p50 (default: 1.5)")
    bench_p.add_argument(
        "-o", "--output", default=None,
        help="write the report JSON here (e.g. BENCH_engine.json)")
    bench_p.set_defaults(handler=cmd_bench)
    serve_p = sub.add_parser(
        "serve",
        help="run the async HTTP/JSON sweep service (docs/SERVING.md)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port", type=int, default=8372,
        help="listen port (0 = pick a free port; default: 8372)")
    serve_p.add_argument(
        "--jobs", type=int, default=0,
        help="process-pool width each job's sweep fans out over "
        "(0 = all cores, 1 = serial in-parent)")
    serve_p.add_argument(
        "--concurrency", type=int, default=2,
        help="jobs executing at once, each with its own sweep pool "
        "(default: 2)")
    serve_p.add_argument(
        "--cache-dir", default=None,
        help="persistent result-cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro-sweeps)")
    serve_p.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent result cache (dedup of in-flight "
        "duplicates still applies; warm repeats re-simulate)")
    serve_p.add_argument(
        "--default-scale", type=float, default=DEFAULT_BENCH_SCALE,
        help="scale used by jobs that do not specify one")
    serve_p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="fault-supervisor retries per failing simulation (default: 2)")
    serve_p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill and retry any single simulation exceeding this budget")
    serve_p.add_argument(
        "--no-lint", action="store_true",
        help="skip the lint preflight on submitted jobs")
    serve_p.add_argument(
        "--backend", choices=EXECUTOR_BACKENDS, default="local",
        help="executor backend job sweeps fan out through "
        "(docs/SWEEPS.md); 'ssh' requires --hosts")
    serve_p.add_argument(
        "--hosts", default=None, metavar="H1,H2,...",
        help="comma-separated remote hosts for --backend ssh")
    serve_p.set_defaults(handler=cmd_serve)
    loadtest_p = sub.add_parser(
        "loadtest",
        help="hammer a serve instance with duplicate-and-distinct jobs "
        "and report dedup/latency (docs/SERVING.md)",
    )
    loadtest_p.add_argument(
        "--url", default=None, metavar="HOST:PORT",
        help="target server; omit to boot an in-process one")
    loadtest_p.add_argument(
        "--requests", type=int, default=200,
        help="total submissions in the storm phase (default: 200)")
    loadtest_p.add_argument(
        "--duplicate-ratio", type=float, default=0.8,
        help="fraction of requests replaying the hot job (default: 0.8)")
    loadtest_p.add_argument(
        "--concurrency", type=int, default=32,
        help="submissions in flight at once (default: 32)")
    loadtest_p.add_argument(
        "--benchmark", action="append", default=None,
        help="benchmark(s) each sweep job covers (default: rodinia/kmeans)")
    loadtest_p.add_argument(
        "--scale", type=float, default=1 / 64,
        help="footprint scale of the jobs (default: 1/64)")
    loadtest_p.add_argument(
        "--warm-requests", type=int, default=20,
        help="warm-phase repeats of the hot job (default: 20)")
    loadtest_p.add_argument("--seed", type=int, default=0,
                            help="shuffle seed for the request mix")
    loadtest_p.add_argument(
        "--job-timeout", type=float, default=120.0,
        help="per-request terminal-status timeout (default: 120s)")
    loadtest_p.add_argument(
        "--check", action="store_true",
        help="exit 1 unless dedup collapsed duplicates, the warm phase "
        "computed nothing, and warm p50 is under --warm-p50-bound")
    loadtest_p.add_argument(
        "--warm-p50-bound", type=float, default=2.0,
        help="warm-hit p50 outer-time bound for --check (default: 2.0s)")
    loadtest_p.add_argument(
        "--json", action="store_true",
        help="print the full report as JSON instead of the summary")
    loadtest_p.set_defaults(handler=cmd_loadtest)
    advise_p = add("advise", cmd_advise,
                   "rank optimization opportunities for one benchmark")
    advise_p.add_argument("benchmark", nargs="?", default=None,
                          help="benchmark name; optional with --static "
                          "(omit to advise the whole registry)")
    advise_p.add_argument(
        "--static", action="store_true",
        help="simulation-free advisor: derive the verdicts from the "
        "dataflow engine's static roofline model instead of simulating")
    timeline_p = add("timeline", cmd_timeline,
                     "render a run's component activity as ASCII Gantt")
    timeline_p.add_argument("benchmark", help="benchmark name")
    timeline_p.add_argument("--limited", action="store_true",
                            help="show the limited-copy version")
    export_p = add("export", cmd_export, "dump one run as JSON")
    export_p.add_argument("benchmark", help="benchmark name")
    export_p.add_argument("--limited", action="store_true")
    export_p.add_argument("--include-log", action="store_true",
                          help="include the raw off-chip access log")
    export_p.add_argument("--output", default=None, help="output file path")
    spec_p = add("run-spec", cmd_run_spec,
                 "simulate a declarative JSON workload, both systems")
    spec_p.add_argument("spec", help="path to a workload JSON file")
    add("fig3", cmd_fig3, "regenerate Fig. 3 (kmeans case study)")
    for name, module in FIGURES.items():
        add(name, cmd_figure(module), f"regenerate {name}")
    add("validate", cmd_validate, "Section V-A/V-B model validations")
    add("ablations", cmd_ablations, "ablation studies")
    add("all", cmd_all, "regenerate every table and figure")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
