"""Reusable pipeline shapes for the benchmark suites.

Four archetypes cover most of the 46 simulated benchmarks:

* :func:`graph_app` — Lonestar / Pannotia style: copy a graph to the GPU,
  iterate irregular kernels with a CPU-checked convergence loop, copy the
  result back.  Optional software worklist.
* :func:`stencil_app` — grid sweeps with ping-pong buffers (hotspot,
  pathfinder, stencil, srad, ...).
* :func:`dense_app` — one or a few dense, compute-heavy kernels over big
  inputs (sgemm, cutcp, mri-q, gaussian, ...).
* :func:`offload_loop_app` — kmeans-style iterative CPU/GPU ping-pong with
  small per-iteration copies.

Benchmarks with unusual structure (fft, dwt, mummer, backprop,
streamcluster, ...) are built directly with :class:`PipelineBuilder` in
their suite modules.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess

#: FLOP-rate efficiency defaults by rough workload character.
IRREGULAR_EFFICIENCY = 0.18
STENCIL_EFFICIENCY = 0.55
DENSE_EFFICIENCY = 0.7


def _metadata(
    outputs: Sequence[str],
    pagefault_heavy: bool = False,
    **extra: object,
) -> Dict[str, object]:
    meta: Dict[str, object] = {"outputs": tuple(outputs)}
    if pagefault_heavy:
        meta["pagefault_heavy"] = True
    meta.update(extra)
    return meta


def graph_app(
    name: str,
    *,
    graph_bytes: int,
    props_bytes: int,
    iterations: int,
    gpu_flops_per_iter: float,
    touched_fraction: float = 0.6,
    passes_per_iter: float = 1.5,
    uses_worklist: bool = False,
    worklist_bytes: int = 0,
    cpu_check_flops: float = 1e5,
    efficiency: float = IRREGULAR_EFFICIENCY,
    aligned: bool = True,
    pagefault_heavy: bool = False,
) -> Pipeline:
    """Irregular graph-analytics benchmark (Lonestar / Pannotia shape).

    The CPU copies the graph structure and property arrays to the GPU, then
    repeatedly launches a traversal kernel; after each kernel a small flag
    is copied back and the CPU decides whether to continue — the
    outer-loop structure Section V-A calls out.
    """
    b = PipelineBuilder(name, metadata=_metadata(["props"], pagefault_heavy))
    b.buffer("graph", graph_bytes, cpu_line_aligned=aligned)
    b.buffer("props", props_bytes, cpu_line_aligned=aligned)
    b.buffer("flag", 4096)
    b.mirror("flag")
    if uses_worklist:
        b.buffer(
            "worklist",
            worklist_bytes or max(4096, props_bytes // 2),
            temporary=True,
            cpu_line_aligned=aligned,
        )
    b.copy_h2d("graph")
    b.copy_h2d("props")
    for i in range(iterations):
        reads = [
            BufferAccess("graph_dev", AccessPattern.GRAPH, fraction=touched_fraction,
                         passes=passes_per_iter),
            BufferAccess("props_dev", AccessPattern.GRAPH, fraction=touched_fraction,
                         passes=passes_per_iter),
        ]
        writes = [
            BufferAccess("props_dev", AccessPattern.GRAPH,
                         fraction=touched_fraction * 0.5),
            BufferAccess("flag_dev", AccessPattern.STREAMING, broadcast=True),
        ]
        if uses_worklist:
            reads.append(BufferAccess("worklist", AccessPattern.STREAMING,
                                      fraction=touched_fraction))
            writes.append(BufferAccess("worklist", AccessPattern.RANDOM,
                                       fraction=touched_fraction * 0.5))
        b.gpu_kernel(
            f"traverse_{i}",
            flops=gpu_flops_per_iter,
            reads=reads,
            writes=writes,
            efficiency=efficiency,
        )
        b.copy_d2h("flag_dev", "flag", name=f"d2h_flag_{i}")
        b.cpu_stage(
            f"check_{i}",
            flops=cpu_check_flops,
            reads=[BufferAccess("flag", AccessPattern.STREAMING)],
            occupancy=0.25,
        )
    b.copy_d2h("props_dev", "props", name="d2h_props")
    return b.build()


def stencil_app(
    name: str,
    *,
    grid_bytes: int,
    iterations: int,
    flops_per_sweep: float,
    efficiency: float = STENCIL_EFFICIENCY,
    aligned: bool = True,
    temp_bytes: int = 0,
    pagefault_heavy: bool = False,
    chunkable: bool = True,
) -> Pipeline:
    """Iterative grid sweep with ping-pong buffers (hotspot / stencil shape)."""
    b = PipelineBuilder(name, metadata=_metadata(["grid_a"], pagefault_heavy))
    b.buffer("grid_a", grid_bytes, cpu_line_aligned=aligned)
    b.buffer("grid_b", grid_bytes, temporary=True, cpu_line_aligned=aligned)
    if temp_bytes:
        b.buffer("temps", temp_bytes, temporary=True, cpu_line_aligned=aligned)
    b.copy_h2d("grid_a", chunkable=chunkable)
    src, dst = "grid_a_dev", "grid_b"
    for i in range(iterations):
        reads = [BufferAccess(src, AccessPattern.STENCIL)]
        writes = [BufferAccess(dst, AccessPattern.STREAMING)]
        if temp_bytes:
            reads.append(BufferAccess("temps", AccessPattern.STREAMING, passes=0.5))
            writes.append(BufferAccess("temps", AccessPattern.STREAMING, passes=0.5))
        b.gpu_kernel(
            f"sweep_{i}",
            flops=flops_per_sweep,
            reads=reads,
            writes=writes,
            efficiency=efficiency,
            chunkable=chunkable and iterations == 1,
        )
        src, dst = dst, src
    b.copy_d2h(src, "grid_a", name="d2h_result", chunkable=chunkable)
    return b.build()


def dense_app(
    name: str,
    *,
    input_bytes: Dict[str, int],
    output_bytes: Dict[str, int],
    kernel_flops: Sequence[float],
    input_passes: float = 2.0,
    efficiency: float = DENSE_EFFICIENCY,
    aligned: bool = True,
    chunkable: bool = True,
    cpu_post_flops: float = 0.0,
) -> Pipeline:
    """Bulk-offload dense benchmark: copy in, crunch, copy out."""
    outputs = list(output_bytes)
    b = PipelineBuilder(name, metadata=_metadata(outputs))
    for buf, size in input_bytes.items():
        b.buffer(buf, size, cpu_line_aligned=aligned)
    for buf, size in output_bytes.items():
        b.buffer(buf, size, cpu_line_aligned=aligned)
    for buf in input_bytes:
        b.copy_h2d(buf, chunkable=chunkable)
    for buf in output_bytes:
        b.mirror(buf)
    for k, flops in enumerate(kernel_flops):
        b.gpu_kernel(
            f"kernel_{k}",
            flops=flops,
            reads=[
                BufferAccess(f"{buf}_dev", AccessPattern.STREAMING, passes=input_passes)
                for buf in input_bytes
            ],
            writes=[
                BufferAccess(f"{buf}_dev", AccessPattern.STREAMING)
                for buf in output_bytes
            ],
            efficiency=efficiency,
            chunkable=chunkable and len(kernel_flops) == 1,
        )
    for buf in output_bytes:
        b.copy_d2h(f"{buf}_dev", buf, name=f"d2h_{buf}", chunkable=chunkable)
    if cpu_post_flops:
        b.cpu_stage(
            "post",
            flops=cpu_post_flops,
            reads=[BufferAccess(buf, AccessPattern.STREAMING) for buf in outputs],
            occupancy=0.25,
            migratable=True,
        )
    return b.build()


def offload_loop_app(
    name: str,
    *,
    data_bytes: int,
    state_bytes: int,
    result_bytes: int,
    iterations: int,
    gpu_flops_per_iter: float,
    cpu_flops_per_iter: float,
    extra_d2h_bytes: int = 0,
    gpu_efficiency: float = 0.6,
    data_passes: float = 1.0,
    aligned: bool = True,
    cpu_reads_data_fraction: float = 0.0,
    cpu_result_fraction: float = 1.0,
) -> Pipeline:
    """Iterative offload with per-iteration CPU post-processing (kmeans shape).

    Per iteration: the GPU streams the big data array against a small
    broadcast state (e.g. cluster centres), writes per-element results and
    optional partial sums; results are copied back; the CPU folds them into
    new state, which is copied to the GPU for the next iteration.
    """
    b = PipelineBuilder(name, metadata=_metadata(["state"]))
    b.buffer("data", data_bytes, cpu_line_aligned=aligned)
    b.buffer("state", state_bytes)
    b.buffer("result", result_bytes, cpu_line_aligned=aligned)
    if extra_d2h_bytes:
        b.buffer("partials", extra_d2h_bytes, cpu_line_aligned=aligned)
    b.copy_h2d("data")
    b.copy_h2d("state", name="h2d_state_init")
    b.mirror("result")
    if extra_d2h_bytes:
        b.mirror("partials")
    for i in range(iterations):
        writes = [BufferAccess("result_dev", AccessPattern.STREAMING)]
        if extra_d2h_bytes:
            writes.append(BufferAccess("partials_dev", AccessPattern.STREAMING))
        b.gpu_kernel(
            f"map_{i}",
            flops=gpu_flops_per_iter,
            reads=[
                BufferAccess("data_dev", AccessPattern.STREAMING, passes=data_passes),
                BufferAccess(
                    "state_dev", AccessPattern.BROADCAST, passes=16.0, broadcast=True
                ),
            ],
            writes=writes,
            efficiency=gpu_efficiency,
            chunkable=True,
        )
        b.copy_d2h("result_dev", "result", name=f"d2h_result_{i}", chunkable=True)
        if extra_d2h_bytes:
            b.copy_d2h("partials_dev", "partials", name=f"d2h_partials_{i}", chunkable=True)
        cpu_reads = [
            BufferAccess(
                "result", AccessPattern.STREAMING, fraction=cpu_result_fraction
            )
        ]
        if extra_d2h_bytes:
            cpu_reads.append(BufferAccess("partials", AccessPattern.STREAMING))
        if cpu_reads_data_fraction > 0:
            cpu_reads.append(
                BufferAccess(
                    "data", AccessPattern.STRIDED, fraction=cpu_reads_data_fraction
                )
            )
        b.cpu_stage(
            f"update_{i}",
            flops=cpu_flops_per_iter,
            reads=cpu_reads,
            writes=[BufferAccess("state", AccessPattern.STREAMING, passes=2.0)],
            occupancy=0.25,
            chunkable=True,
            migratable=True,
        )
        if i + 1 < iterations:
            b.copy_h2d("state", "state_dev", name=f"h2d_state_{i}")
    return b.build()
