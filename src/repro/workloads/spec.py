"""Benchmark specifications: metadata (Table II) plus pipeline builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.pipeline.graph import Pipeline

PipelineBuilderFn = Callable[[], Pipeline]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark of the four suites.

    Table II flags:
        pc_comm: has producer-consumer communication between pipeline stages
            (CPU execution, GPU kernels, or copies).
        pipe_parallel: pipeline stages could be parallelized / brought into
            closer temporal proximity.
        regular_pc: has regular producer-consumer constructs.
        irregular: has irregular control flow / memory access behaviour.
        sw_queue: uses software worklists.

    Figure annotations:
        misaligned_limited_copy: suffers allocation misalignment after copy
            removal (the ``*`` benchmarks of Fig. 5).
        bandwidth_limited: bumps against off-chip bandwidth during cache-
            contentious stages (the ``*`` benchmarks of Fig. 9).
        pagefault_heavy: GPU writes to unmapped memory serialize on the CPU
            page-fault handler (srad, heartwall, pr_spmv).

    ``build`` returns the paper-scale *copy* (discrete GPU) version of the
    pipeline; the limited-copy version is derived with
    :func:`repro.pipeline.transforms.remove_copies`.  ``build`` is None for
    the 12 benchmarks the paper lists in its suites but does not simulate.
    """

    name: str
    suite: str
    description: str
    pc_comm: bool
    pipe_parallel: bool
    regular_pc: bool
    irregular: bool
    sw_queue: bool
    build: Optional[PipelineBuilderFn] = None
    misaligned_limited_copy: bool = False
    bandwidth_limited: bool = False
    pagefault_heavy: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.suite:
            raise ValueError("benchmark name and suite must be non-empty")
        if self.pipe_parallel and not self.pc_comm:
            raise ValueError(
                f"{self.full_name}: pipe_parallel requires pc_comm (Table II)"
            )
        if self.sw_queue and not self.pc_comm:
            raise ValueError(f"{self.full_name}: sw_queue requires pc_comm")

    @property
    def full_name(self) -> str:
        return f"{self.suite}/{self.name}"

    @property
    def simulatable(self) -> bool:
        return self.build is not None

    def pipeline(self) -> Pipeline:
        """Build the copy-version pipeline (paper scale)."""
        if self.build is None:
            raise ValueError(f"{self.full_name} has no pipeline model")
        return self.build()
