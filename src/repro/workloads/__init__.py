"""Benchmark workload models for the four suites of the study."""

from repro.workloads.loader import (
    WorkloadSpecError,
    parse_size,
    pipeline_from_dict,
    pipeline_from_file,
    pipeline_from_json,
)
from repro.workloads.registry import (
    SUITES,
    all_specs,
    get,
    simulatable_specs,
    suite_specs,
)
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.templates import (
    dense_app,
    graph_app,
    offload_loop_app,
    stencil_app,
)

__all__ = [
    "BenchmarkSpec",
    "WorkloadSpecError",
    "SUITES",
    "all_specs",
    "dense_app",
    "get",
    "graph_app",
    "parse_size",
    "pipeline_from_dict",
    "pipeline_from_file",
    "pipeline_from_json",
    "offload_loop_app",
    "simulatable_specs",
    "stencil_app",
    "suite_specs",
]
