"""Scaled-simulation helpers.

Paper-scale workloads (6-90 MB footprints) are faithful but slow to
simulate in Python; `SimOptions(scale=...)` shrinks footprints and caches
together so capacity *ratios* — which drive contention, spills, and every
figure — are preserved.  This module helps pick and sanity-check a scale:

* :func:`estimate_accesses` — predicted trace length of a pipeline at a
  given scale (the dominant simulation cost);
* :func:`recommended_scale` — largest power-of-two scale whose predicted
  cost fits a budget;
* :func:`scaling_report` — runs a pipeline at two scales and verifies the
  scale-invariant quantities actually are invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config.system import SystemConfig, discrete_gpu_system
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import StageKind
from repro.sim.engine import SimOptions, simulate

#: Extra accesses per element for stencil's neighbour touches.
_STENCIL_FACTOR = 3.0


def estimate_accesses(pipeline: Pipeline, scale: float = 1.0, line_bytes: int = 128) -> int:
    """Predict the total trace length (accesses) of one simulation run.

    Computed from the access specs without generating anything; accurate to
    within rounding because the generators emit exactly
    ``touched_blocks x passes`` records (x3 for stencil, x1.35 for
    misaligned limited-copy streams — ignored here, it is a bounded
    constant).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    total = 0.0
    for stage in pipeline.stages:
        for access in stage.accesses:
            buf = pipeline.buffers[access.buffer]
            blocks = max(1.0, buf.size_bytes * scale / line_bytes)
            touched = max(1.0, blocks * access.region.span * access.fraction)
            count = touched * access.passes
            if access.pattern is AccessPattern.STENCIL:
                count *= _STENCIL_FACTOR
            total += count
    return int(total)


def recommended_scale(
    pipeline: Pipeline,
    max_accesses: int = 2_000_000,
    min_scale: float = 1 / 1024,
) -> float:
    """Largest power-of-two scale whose predicted trace fits the budget."""
    if max_accesses <= 0:
        raise ValueError("max_accesses must be positive")
    scale = 1.0
    while scale > min_scale and estimate_accesses(pipeline, scale) > max_accesses:
        scale /= 2.0
    return max(scale, min_scale)


@dataclass(frozen=True)
class ScalingReport:
    """Scale-invariance check between two scales of the same pipeline."""

    coarse_scale: float
    fine_scale: float
    runtime_ratio: float      # coarse roi / (fine roi x scale ratio)
    access_ratio: float       # coarse accesses / (fine accesses x scale ratio)
    gpu_utilization_delta: float

    @property
    def runtime_invariant(self) -> bool:
        """Run time should scale linearly with the footprint scale."""
        return abs(self.runtime_ratio - 1.0) < 0.25

    @property
    def access_invariant(self) -> bool:
        return abs(self.access_ratio - 1.0) < 0.25


def scaling_report(
    pipeline: Pipeline,
    coarse_scale: float,
    fine_scale: float,
    system: Optional[SystemConfig] = None,
    seed: int = 0,
) -> ScalingReport:
    """Simulate at two scales and compare the scale-invariant quantities."""
    if not 0 < fine_scale < coarse_scale <= 1.0:
        raise ValueError("need 0 < fine_scale < coarse_scale <= 1")
    system = system or discrete_gpu_system()
    from repro.sim.hierarchy import Component

    coarse = simulate(pipeline, system, SimOptions(scale=coarse_scale, seed=seed))
    fine = simulate(pipeline, system, SimOptions(scale=fine_scale, seed=seed))
    ratio = coarse_scale / fine_scale
    return ScalingReport(
        coarse_scale=coarse_scale,
        fine_scale=fine_scale,
        runtime_ratio=coarse.roi_s / (fine.roi_s * ratio) if fine.roi_s else 0.0,
        access_ratio=(
            coarse.offchip_accesses() / (fine.offchip_accesses() * ratio)
            if fine.offchip_accesses()
            else 0.0
        ),
        gpu_utilization_delta=abs(
            coarse.utilization(Component.GPU) - fine.utilization(Component.GPU)
        ),
    )
