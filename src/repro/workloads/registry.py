"""Registry of all 58 benchmarks across the four suites."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.workloads.spec import BenchmarkSpec
from repro.workloads.suites import lonestar, pannotia, parboil, rodinia

SUITES: Tuple[str, ...] = ("lonestar", "pannotia", "parboil", "rodinia")

_SUITE_MODULES = {
    "lonestar": lonestar,
    "pannotia": pannotia,
    "parboil": parboil,
    "rodinia": rodinia,
}


def _build_registry() -> Dict[str, BenchmarkSpec]:
    registry: Dict[str, BenchmarkSpec] = {}
    for suite in SUITES:
        for spec in _SUITE_MODULES[suite].specs():
            if spec.suite != suite:
                raise ValueError(
                    f"spec {spec.full_name!r} registered under suite {suite!r}"
                )
            if spec.full_name in registry:
                raise ValueError(f"duplicate benchmark {spec.full_name!r}")
            registry[spec.full_name] = spec
    return registry


_REGISTRY = _build_registry()


def all_specs() -> Tuple[BenchmarkSpec, ...]:
    """Every benchmark of the four suites (58 total; Table II universe)."""
    return tuple(_REGISTRY.values())


def simulatable_specs() -> Tuple[BenchmarkSpec, ...]:
    """The 46 benchmarks the study simulates."""
    return tuple(spec for spec in _REGISTRY.values() if spec.simulatable)


def suite_specs(suite: str) -> Tuple[BenchmarkSpec, ...]:
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; choose from {SUITES}")
    return tuple(spec for spec in _REGISTRY.values() if spec.suite == suite)


def get(full_name: str) -> BenchmarkSpec:
    """Look up a benchmark by ``suite/name`` (or bare name if unambiguous)."""
    if full_name in _REGISTRY:
        return _REGISTRY[full_name]
    matches = [s for s in _REGISTRY.values() if s.name == full_name]
    if len(matches) == 1:
        return matches[0]
    if not matches:
        raise KeyError(f"no benchmark named {full_name!r}")
    options = ", ".join(sorted(m.full_name for m in matches))
    raise KeyError(f"ambiguous benchmark {full_name!r}; did you mean: {options}")
