"""The Parboil benchmark suite (Stratton et al., 2012).

Twelve throughput-computing benchmarks; eight have producer-consumer
communication and are simulated.  cutcp and fft retain copies the
limited-copy port cannot remove (double-buffering); fft and stencil carry
significant CPU-side data-movement work (double buffering / clearing) that
Section V-B flags as migration candidates.
"""

from __future__ import annotations

from typing import Tuple

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.templates import dense_app, graph_app, stencil_app

SUITE = "parboil"


def _spec(
    name: str,
    description: str,
    build=None,
    *,
    pc_comm: bool = True,
    irregular: bool = False,
    sw_queue: bool = False,
    bandwidth_limited: bool = False,
    misaligned: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=SUITE,
        description=description,
        pc_comm=pc_comm,
        pipe_parallel=pc_comm,
        regular_pc=pc_comm,
        irregular=irregular,
        sw_queue=sw_queue,
        build=build,
        bandwidth_limited=bandwidth_limited,
        misaligned_limited_copy=misaligned,
    )


def _bfs() -> Pipeline:
    return graph_app(
        "parboil/bfs",
        graph_bytes=26 * MB,
        props_bytes=8 * MB,
        iterations=56,
        gpu_flops_per_iter=4e7,
        touched_fraction=0.35,
        passes_per_iter=3.5,
        uses_worklist=True,
        worklist_bytes=4 * MB,
    )


def _cutcp() -> Pipeline:
    """Cutoff Coulombic potential: compute-dense lattice kernel; the
    double-buffered lattice copies resist removal."""
    b = PipelineBuilder("parboil/cutcp", metadata={"outputs": ("lattice",)})
    b.buffer("atoms", 6 * MB)
    b.buffer("lattice", 16 * MB)
    b.copy_h2d("atoms")
    b.copy_h2d("lattice", mirror=False)  # double-buffered; not removable
    for step in range(2):
        b.gpu_kernel(
            f"potential_{step}",
            flops=5.5e9,
            reads=[
                BufferAccess("atoms_dev", AccessPattern.STREAMING, passes=4.0),
                BufferAccess("lattice_dev", AccessPattern.STENCIL),
            ],
            writes=[BufferAccess("lattice_dev", AccessPattern.STREAMING)],
            efficiency=0.7,
            chunkable=True,
        )
    b.copy_d2h("lattice_dev", "lattice", mirror=False, name="d2h_lattice")
    b.cpu_stage(
        "finalize",
        flops=4e6,
        reads=[BufferAccess("lattice", AccessPattern.STREAMING)],
        occupancy=0.25,
        migratable=True,
    )
    return b.build()


def _fft() -> Pipeline:
    """FFT: multi-pass butterflies with double-buffered intermediates; the
    CPU shuffles buffers between passes (costly host memory operations) and
    many-to-few data dependencies limit inter-stage optimization."""
    b = PipelineBuilder("parboil/fft", metadata={"outputs": ("signal",)})
    b.buffer("signal", 24 * MB)
    b.buffer("twiddle", 2 * MB)
    b.buffer("scratch", 24 * MB, temporary=True)
    b.copy_h2d("signal", mirror=False)  # double buffer: not removable
    b.copy_h2d("twiddle")
    src, dst = "signal_dev", "scratch"
    for step in range(3):
        b.gpu_kernel(
            f"butterfly_{step}",
            flops=0.45e9,
            reads=[
                BufferAccess(src, AccessPattern.STRIDED, passes=2.0),
                BufferAccess("twiddle_dev", AccessPattern.BROADCAST, passes=8.0,
                             broadcast=True),
            ],
            writes=[BufferAccess(dst, AccessPattern.STRIDED)],
            efficiency=0.5,
        )
        src, dst = dst, src
    b.copy_d2h(src, "signal", mirror=False, name="d2h_signal")
    b.cpu_stage(
        "reorder",
        flops=6e6,
        reads=[BufferAccess("signal", AccessPattern.STRIDED)],
        writes=[BufferAccess("signal", AccessPattern.STRIDED)],
        occupancy=0.25,
        migratable=True,
    )
    return b.build()


def _histo() -> Pipeline:
    """Histogramming: streaming input, contended scatter into small bins."""
    b = PipelineBuilder("parboil/histo", metadata={"outputs": ("bins",)})
    b.buffer("image", 28 * MB)
    b.buffer("bins", 4 * MB)
    b.copy_h2d("image", chunkable=True)
    b.mirror("bins")
    b.gpu_kernel(
        "histogram",
        flops=220e6,
        reads=[BufferAccess("image_dev", AccessPattern.STREAMING)],
        writes=[BufferAccess("bins_dev", AccessPattern.RANDOM, passes=12.0)],
        efficiency=0.25,
        chunkable=True,
    )
    b.copy_d2h("bins_dev", "bins", name="d2h_bins", chunkable=True)
    b.cpu_stage(
        "final_merge",
        flops=8e6,
        reads=[BufferAccess("bins", AccessPattern.STREAMING)],
        writes=[BufferAccess("bins", AccessPattern.STREAMING)],
        occupancy=0.25,
        migratable=True,
    )
    return b.build()


def _lbm() -> Pipeline:
    return stencil_app(
        "parboil/lbm",
        grid_bytes=40 * MB,
        iterations=4,
        flops_per_sweep=1.2e9,
        efficiency=0.45,
        temp_bytes=8 * MB,
    )


def _sgemm() -> Pipeline:
    return dense_app(
        "parboil/sgemm",
        input_bytes={"mat_a": 16 * MB, "mat_b": 16 * MB},
        output_bytes={"mat_c": 16 * MB},
        kernel_flops=[14e9],
        input_passes=3.0,
        efficiency=0.75,
        aligned=False,
    )


def _spmv() -> Pipeline:
    return graph_app(
        "parboil/spmv",
        graph_bytes=30 * MB,
        props_bytes=6 * MB,
        iterations=48,
        gpu_flops_per_iter=6e7,
        touched_fraction=0.9,
        passes_per_iter=3.5,
        efficiency=0.22,
    )


def _stencil() -> Pipeline:
    return stencil_app(
        "parboil/stencil",
        grid_bytes=32 * MB,
        iterations=1,
        flops_per_sweep=2.4e9,
        efficiency=0.6,
        aligned=False,
        chunkable=True,
    )


def specs() -> Tuple[BenchmarkSpec, ...]:
    return (
        _spec("bfs", "breadth-first search", _bfs,
              irregular=True, sw_queue=True, bandwidth_limited=True),
        _spec("cutcp", "cutoff Coulombic potential", _cutcp),
        _spec("fft", "fast Fourier transform", _fft),
        _spec("histo", "saturating histogram", _histo, irregular=True),
        _spec("lbm", "Lattice-Boltzmann method", _lbm, bandwidth_limited=True),
        _spec("mri_gridding", "MRI gridding (not simulated)", None, pc_comm=False),
        _spec("mri_q", "MRI Q-matrix (not simulated)", None, pc_comm=False),
        _spec("sad", "sum of absolute differences (not simulated)", None,
              pc_comm=False),
        _spec("sgemm", "dense matrix multiply", _sgemm, misaligned=True),
        _spec("spmv", "sparse matrix-vector multiply", _spmv,
              irregular=True, bandwidth_limited=True),
        _spec("stencil", "3D Jacobi stencil", _stencil, misaligned=True),
        _spec("tpacf", "two-point angular correlation (not simulated)", None,
              pc_comm=False),
    )
