"""The Pannotia benchmark suite (Che et al., IISWC 2013).

Ten irregular GPGPU graph analyses, each structured to expose available
work *without* software worklists (all ten are simulated).  Originally
OpenCL; the paper ports them to CUDA.  Like Lonestar, copies are a small
fraction of memory accesses because the kernels traverse the graphs
repeatedly, and most members push against memory bandwidth during their
cache-contentious stages.
"""

from __future__ import annotations

from typing import Tuple

from repro.pipeline.graph import Pipeline
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.templates import graph_app

SUITE = "pannotia"


def _spec(
    name: str,
    description: str,
    build,
    *,
    bandwidth_limited: bool = True,
    pagefault_heavy: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=SUITE,
        description=description,
        pc_comm=True,
        pipe_parallel=True,
        regular_pc=True,
        irregular=True,
        sw_queue=False,
        build=build,
        bandwidth_limited=bandwidth_limited,
        pagefault_heavy=pagefault_heavy,
    )


def _graph(
    name: str,
    *,
    graph_mb: int,
    props_mb: int,
    iterations: int,
    flops: float,
    fraction: float,
    passes: float = 4.0,
    pagefault_heavy: bool = False,
) -> Pipeline:
    return graph_app(
        f"pannotia/{name}",
        graph_bytes=graph_mb * MB,
        props_bytes=props_mb * MB,
        iterations=iterations,
        gpu_flops_per_iter=flops,
        touched_fraction=fraction,
        passes_per_iter=passes,
        uses_worklist=False,
        pagefault_heavy=pagefault_heavy,
    )


def specs() -> Tuple[BenchmarkSpec, ...]:
    return (
        _spec("bc", "betweenness centrality",
              lambda: _graph("bc", graph_mb=26, props_mb=10, iterations=64,
                             flops=8e+07, fraction=0.7)),
        _spec("color_max", "graph colouring, max-degree ordering",
              lambda: _graph("color_max", graph_mb=24, props_mb=8, iterations=48,
                             flops=5e+07, fraction=0.8)),
        _spec("color_maxmin", "graph colouring, max-min ordering",
              lambda: _graph("color_maxmin", graph_mb=24, props_mb=8, iterations=56,
                             flops=5.5e+07, fraction=0.8)),
        _spec("fw", "Floyd-Warshall all-pairs shortest paths; CPU and GPU "
              "touch under a third of the copied data",
              lambda: _graph("fw", graph_mb=40, props_mb=8, iterations=48,
                             flops=1.5e+08, fraction=0.28, passes=5)),
        _spec("fw_block", "blocked Floyd-Warshall",
              lambda: _graph("fw_block", graph_mb=40, props_mb=8, iterations=40,
                             flops=2.1e+08, fraction=0.35, passes=4.5)),
        _spec("mis", "maximal independent set",
              lambda: _graph("mis", graph_mb=22, props_mb=8, iterations=48,
                             flops=4.5e+07, fraction=0.75)),
        _spec("pr", "PageRank",
              lambda: _graph("pr", graph_mb=30, props_mb=12, iterations=80,
                             flops=1e+08, fraction=0.95, passes=3)),
        _spec("pr_spmv", "PageRank via SpMV; GPU writes fault against the "
              "serialized CPU page-fault handler",
              lambda: _graph("pr_spmv", graph_mb=30, props_mb=12, iterations=80,
                             flops=9e+07, fraction=0.95, passes=3,
                             pagefault_heavy=True),
              pagefault_heavy=True),
        _spec("sssp", "single-source shortest paths",
              lambda: _graph("sssp", graph_mb=28, props_mb=9, iterations=64,
                             flops=6.5e+07, fraction=0.6)),
        _spec("sssp_ell", "SSSP with ELLPACK layout",
              lambda: _graph("sssp_ell", graph_mb=34, props_mb=9, iterations=64,
                             flops=7e+07, fraction=0.6, passes=3.5)),
    )
