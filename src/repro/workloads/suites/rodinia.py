"""The Rodinia benchmark suite (Che et al., IISWC 2009).

Twenty-two heterogeneous-computing benchmarks — image/signal processing,
machine learning, scientific numerics, and a couple of graph handlers.
Seventeen are simulated.  kmeans is the paper's Section II case study and
its parameters here are calibrated so the Fig. 3 organization sequence
(baseline / async streams / no-copy / parallel / parallel+cache) reproduces
the published shape: copies >50% of baseline run time, GPU ~95% of FLOPs
but <20% utilization, ~2x from copy removal and ~2x more from overlap plus
caching.
"""

from __future__ import annotations

from typing import Tuple

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, Region
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.templates import (
    dense_app,
    graph_app,
    offload_loop_app,
    stencil_app,
)

SUITE = "rodinia"


def _spec(
    name: str,
    description: str,
    build=None,
    *,
    pc_comm: bool = True,
    pipe_parallel: bool = True,
    irregular: bool = False,
    bandwidth_limited: bool = False,
    misaligned: bool = False,
    pagefault_heavy: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=SUITE,
        description=description,
        pc_comm=pc_comm,
        pipe_parallel=pc_comm and pipe_parallel,
        regular_pc=pc_comm,
        irregular=irregular,
        sw_queue=False,
        build=build,
        bandwidth_limited=bandwidth_limited,
        misaligned_limited_copy=misaligned,
        pagefault_heavy=pagefault_heavy,
    )


def kmeans_pipeline() -> Pipeline:
    """The Section II case-study workload (see module docstring)."""
    return offload_loop_app(
        "rodinia/kmeans",
        data_bytes=32 * MB,       # point features
        state_bytes=64 * 1024,    # cluster centres
        result_bytes=6 * MB,      # per-point assignments
        iterations=8,
        gpu_flops_per_iter=110e6,
        cpu_flops_per_iter=2e6,
        extra_d2h_bytes=2 * MB,   # per-block partial sums
        gpu_efficiency=0.6,
        cpu_result_fraction=0.3,  # the CPU folds partials, samples assignments
    )


def _backprop() -> Pipeline:
    """Two-layer neural net training step: forward kernel, CPU reduction,
    backward kernel; wide data parallelism per kernel (Section V-A
    validation benchmark); many-to-few dependencies between stages."""
    b = PipelineBuilder("rodinia/backprop", metadata={"outputs": ("weights",)})
    b.buffer("input", 24 * MB)
    b.buffer("weights", 16 * MB)
    b.buffer("hidden", 8 * MB)
    b.copy_h2d("input", chunkable=True)
    b.copy_h2d("weights", chunkable=True)
    b.mirror("hidden")
    b.gpu_kernel(
        "forward",
        flops=2.2e9,
        reads=[
            BufferAccess("input_dev", AccessPattern.STREAMING),
            BufferAccess("weights_dev", AccessPattern.STREAMING, passes=2.0),
        ],
        writes=[BufferAccess("hidden_dev", AccessPattern.STREAMING)],
        efficiency=0.55,
        chunkable=True,
    )
    b.copy_d2h("hidden_dev", "hidden", name="d2h_hidden", chunkable=True)
    b.cpu_stage(
        "reduce_error",
        flops=12e6,
        reads=[BufferAccess("hidden", AccessPattern.STREAMING)],
        writes=[BufferAccess("hidden", AccessPattern.STREAMING, passes=0.1)],
        occupancy=0.25,
        chunkable=True,
        migratable=True,
    )
    b.copy_h2d("hidden", "hidden_dev", name="h2d_hidden_back", chunkable=True)
    b.gpu_kernel(
        "backward",
        flops=2.0e9,
        reads=[
            BufferAccess("hidden_dev", AccessPattern.STREAMING),
            BufferAccess("input_dev", AccessPattern.STREAMING),
        ],
        writes=[BufferAccess("weights_dev", AccessPattern.STREAMING)],
        efficiency=0.55,
        chunkable=True,
    )
    b.copy_d2h("weights_dev", "weights", name="d2h_weights", chunkable=True)
    return b.build()


def _strmclstr() -> Pipeline:
    """Streamcluster: GPU distance kernels feed a heavy, low-TLP CPU "pgain"
    evaluation each round — the second Section V-B migration validation
    benchmark."""
    b = PipelineBuilder("rodinia/strmclstr", metadata={"outputs": ("centers",)})
    b.buffer("points", 24 * MB)
    b.buffer("centers", 512 * 1024)
    b.buffer("assign", 4 * MB)
    b.copy_h2d("points")
    b.copy_h2d("centers")
    b.mirror("assign")
    for round_idx in range(5):
        b.gpu_kernel(
            f"dist_{round_idx}",
            flops=240e6,
            reads=[
                BufferAccess("points_dev", AccessPattern.STREAMING),
                BufferAccess("centers_dev", AccessPattern.BROADCAST, passes=12.0,
                             broadcast=True),
            ],
            writes=[BufferAccess("assign_dev", AccessPattern.STREAMING)],
            efficiency=0.55,
            chunkable=True,
        )
        b.copy_d2h("assign_dev", "assign", name=f"d2h_assign_{round_idx}",
                   chunkable=True)
        b.cpu_stage(
            f"pgain_{round_idx}",
            flops=30e6,
            reads=[
                BufferAccess("assign", AccessPattern.STREAMING),
                BufferAccess("points", AccessPattern.STRIDED, fraction=0.15),
            ],
            writes=[BufferAccess("centers", AccessPattern.STREAMING, passes=2.0)],
            occupancy=0.25,
            chunkable=True,
            migratable=True,
        )
        if round_idx < 4:
            b.copy_h2d("centers", "centers_dev", name=f"h2d_centers_r{round_idx}")
    return b.build()


def _dwt() -> Pipeline:
    """2D discrete wavelet transform: GPU transform levels interleaved with
    dominant single-threaded CPU quantization — CPU execution dominates the
    baseline, so migration gains are large."""
    b = PipelineBuilder("rodinia/dwt", metadata={"outputs": ("image",)})
    b.buffer("image", 24 * MB)
    b.buffer("coeffs", 24 * MB)
    b.copy_h2d("image", mirror=False)  # double-buffered staging copy
    b.mirror("coeffs")
    for level in range(2):
        b.gpu_kernel(
            f"transform_{level}",
            flops=600e6,
            reads=[BufferAccess("image_dev", AccessPattern.STRIDED, passes=2.0)],
            writes=[BufferAccess("coeffs_dev", AccessPattern.STRIDED)],
            efficiency=0.45,
        )
        b.copy_d2h("coeffs_dev", "coeffs", name=f"d2h_coeffs_{level}")
        b.cpu_stage(
            f"quantize_{level}",
            flops=180e6,
            reads=[BufferAccess("coeffs", AccessPattern.STREAMING, passes=2.0)],
            writes=[BufferAccess("image", AccessPattern.STREAMING)],
            occupancy=0.25,
            efficiency=0.3,
            migratable=True,
        )
        if level == 0:
            b.copy_h2d("image", "image_dev", name="h2d_level1", mirror=False)
    return b.build()


def _mummer() -> Pipeline:
    """MUMmerGPU sequence alignment: pointer-chasing suffix-tree traversal;
    the CPU streams query data from disk while the GPU executes (the one
    Rodinia benchmark whose stages cannot be brought closer together), then
    performs heavy post-processing."""
    b = PipelineBuilder("rodinia/mummer", metadata={"outputs": ("matches",)})
    b.buffer("tree", 30 * MB)
    b.buffer("queries", 12 * MB)
    b.buffer("matches", 8 * MB)
    b.copy_h2d("tree")
    b.copy_h2d("queries")
    b.mirror("matches")
    b.cpu_stage(
        "disk_read",
        flops=4e6,
        writes=[BufferAccess("queries", AccessPattern.STREAMING)],
        occupancy=0.25,
    )
    b.gpu_kernel(
        "align",
        flops=800e6,
        reads=[
            BufferAccess("tree_dev", AccessPattern.POINTER_CHASE, fraction=0.6,
                         passes=4.0),
            BufferAccess("queries_dev", AccessPattern.STREAMING),
        ],
        writes=[BufferAccess("matches_dev", AccessPattern.STREAMING)],
        efficiency=0.12,
    )
    b.copy_d2h("matches_dev", "matches", name="d2h_matches")
    b.cpu_stage(
        "postprocess",
        flops=60e6,
        reads=[BufferAccess("matches", AccessPattern.STREAMING, passes=2.0)],
        occupancy=0.25,
        efficiency=0.3,
    )
    return b.build()


def _heartwall() -> Pipeline:
    """Heart-wall tracking: per-frame template-matching kernels with large
    staging copies the port cannot remove; fault-heavy on the
    heterogeneous processor."""
    b = PipelineBuilder(
        "rodinia/heartwall",
        metadata={"outputs": ("positions",), "pagefault_heavy": True},
    )
    b.buffer("frames", 30 * MB)
    b.buffer("templates", 4 * MB)
    b.buffer("positions", 2 * MB)
    b.buffer("workspace", 16 * MB, temporary=True)
    b.copy_h2d("templates")
    b.mirror("positions")
    frames = 5
    for f in range(frames):
        region = (f / frames, (f + 1) / frames)
        b.copy_h2d(
            "frames",
            name=f"h2d_frame_{f}",
            mirror=(f == 0),
            region=Region(*region),
        )
        b.gpu_kernel(
            f"track_{f}",
            flops=700e6,
            reads=[
                BufferAccess("frames_dev", AccessPattern.STENCIL,
                             region=Region(*region)),
                BufferAccess("templates_dev", AccessPattern.BROADCAST, passes=6.0,
                             broadcast=True),
                BufferAccess("workspace", AccessPattern.STREAMING, passes=0.5),
            ],
            writes=[
                BufferAccess("positions_dev", AccessPattern.STREAMING),
                BufferAccess("workspace", AccessPattern.STREAMING, passes=0.5),
            ],
            efficiency=0.4,
        )
    b.copy_d2h("positions_dev", "positions", name="d2h_positions")
    return b.build()


def _particlefilter(name: str, irregular: bool) -> Pipeline:
    pattern = AccessPattern.RANDOM if irregular else AccessPattern.STREAMING
    b = PipelineBuilder(f"rodinia/{name}", metadata={"outputs": ("weights",)})
    b.buffer("frames", 20 * MB)
    b.buffer("particles", 6 * MB)
    b.buffer("weights", 6 * MB)
    b.copy_h2d("frames")
    b.copy_h2d("particles")
    b.mirror("weights")
    for step in range(4):
        b.gpu_kernel(
            f"weigh_{step}",
            flops=150e6,
            reads=[
                BufferAccess("frames_dev", pattern, fraction=0.5, passes=2.0),
                BufferAccess("particles_dev", AccessPattern.STREAMING),
            ],
            writes=[BufferAccess("weights_dev", AccessPattern.STREAMING)],
            efficiency=0.35 if irregular else 0.5,
        )
        b.copy_d2h("weights_dev", "weights", name=f"d2h_weights_{step}")
        b.cpu_stage(
            f"resample_{step}",
            flops=8e6,
            reads=[BufferAccess("weights", AccessPattern.STREAMING)],
            writes=[BufferAccess("particles", AccessPattern.STREAMING)],
            occupancy=0.25,
            migratable=True,
        )
        if step < 3:
            b.copy_h2d("particles", "particles_dev", name=f"h2d_particles_step{step}")
    return b.build()


def specs() -> Tuple[BenchmarkSpec, ...]:
    return (
        _spec("backprop", "neural-net training step", _backprop),
        _spec("bfs", "breadth-first search",
              lambda: graph_app("rodinia/bfs", graph_bytes=24 * MB,
                                props_bytes=8 * MB, iterations=64,
                                gpu_flops_per_iter=3e7, touched_fraction=0.3,
                                passes_per_iter=3.5),
              irregular=True, bandwidth_limited=True),
        _spec("btree", "B+-tree search (not simulated)", None, irregular=True),
        _spec("cell", "cellular automaton grid",
              lambda: stencil_app("rodinia/cell", grid_bytes=24 * MB,
                                  iterations=5, flops_per_sweep=700e6)),
        _spec("cfd", "unstructured-grid Euler solver",
              lambda: graph_app("rodinia/cfd", graph_bytes=36 * MB,
                                props_bytes=12 * MB, iterations=40,
                                gpu_flops_per_iter=2.5e8, touched_fraction=0.85,
                                passes_per_iter=3.0, efficiency=0.3),
              irregular=True, bandwidth_limited=True),
        _spec("dwt", "2D discrete wavelet transform", _dwt),
        _spec("gaussian", "Gaussian elimination: iterative refinement of most "
              "of its data, so copies are few",
              lambda: dense_app("rodinia/gaussian",
                                input_bytes={"matrix": 16 * MB},
                                output_bytes={"solution": 2 * MB},
                                kernel_flops=[400e6] * 8,
                                input_passes=2.0, efficiency=0.5,
                                chunkable=False)),
        _spec("heartwall", "heart-wall motion tracking", _heartwall,
              pagefault_heavy=True),
        _spec("hotspot", "thermal simulation stencil",
              lambda: stencil_app("rodinia/hotspot", grid_bytes=16 * MB,
                                  iterations=6, flops_per_sweep=500e6,
                                  aligned=False),
              misaligned=True),
        _spec("kmeans", "k-means clustering (Section II case study)",
              kmeans_pipeline),
        _spec("lavamd", "molecular dynamics (not simulated)", None,
              irregular=True),
        _spec("leukocyte", "leukocyte tracking (not simulated)", None,
              pc_comm=False),
        _spec("lud", "LU decomposition",
              lambda: dense_app("rodinia/lud",
                                input_bytes={"matrix": 16 * MB},
                                output_bytes={"factors": 16 * MB},
                                kernel_flops=[500e6] * 6,
                                input_passes=2.5, efficiency=0.55,
                                chunkable=False)),
        _spec("mummer", "MUMmerGPU sequence alignment", _mummer,
              pipe_parallel=False, irregular=True),
        _spec("myocyte", "cardiac myocyte simulation (not simulated)", None,
              pc_comm=False),
        _spec("nn", "k-nearest neighbours (not simulated)", None, pc_comm=False),
        _spec("nw", "Needleman-Wunsch alignment; many-to-few dependencies",
              lambda: stencil_app("rodinia/nw", grid_bytes=16 * MB,
                                  iterations=4, flops_per_sweep=120e6,
                                  efficiency=0.35, chunkable=False)),
        _spec("pathfinder", "dynamic-programming grid walk",
              lambda: stencil_app("rodinia/pathfinder", grid_bytes=24 * MB,
                                  iterations=5, flops_per_sweep=350e6,
                                  aligned=False),
              misaligned=True),
        _spec("pf_float", "particle filter, float kernels; page-fault "
              "serialization cuts its GPU cache contention",
              lambda: _particlefilter("pf_float", irregular=False)),
        _spec("pf_naive", "particle filter, naive kernels",
              lambda: _particlefilter("pf_naive", irregular=True),
              irregular=True),
        _spec("srad", "speckle-reducing anisotropic diffusion: large GPU "
              "temporaries; 7x page-fault slowdown",
              lambda: stencil_app("rodinia/srad", grid_bytes=24 * MB,
                                  iterations=4, flops_per_sweep=600e6,
                                  temp_bytes=24 * MB, pagefault_heavy=True),
              pagefault_heavy=True),
        _spec("strmclstr", "streamcluster online clustering", _strmclstr),
    )
