"""The LonestarGPU benchmark suite (Burtscher et al., IISWC 2012).

Fourteen irregular-algorithm benchmarks operating on graph-like data
structures; ten use software worklists.  Eleven run in the study; three are
metadata-only (listed in Table II but not simulated).

Pipeline parameters (graph sizes, iteration counts, FLOPs per traversed
edge) are distilled from the paper's qualitative commentary: the suite is
heavily irregular, mostly bandwidth-limited during contentious stages, and
copies account for at most ~5% of memory accesses because CPU and GPU
perform multiple traversals of the data between copies.
"""

from __future__ import annotations

from typing import Tuple

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess
from repro.units import MB
from repro.workloads.spec import BenchmarkSpec
from repro.workloads.templates import graph_app

SUITE = "lonestar"


def _spec(
    name: str,
    description: str,
    build=None,
    *,
    pipe_parallel: bool = True,
    irregular: bool = True,
    sw_queue: bool = False,
    bandwidth_limited: bool = False,
    misaligned: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        suite=SUITE,
        description=description,
        pc_comm=True,
        pipe_parallel=pipe_parallel,
        regular_pc=True,
        irregular=irregular,
        sw_queue=sw_queue,
        build=build,
        bandwidth_limited=bandwidth_limited,
        misaligned_limited_copy=misaligned,
    )


def _bfs() -> Pipeline:
    return graph_app(
        "lonestar/bfs",
        graph_bytes=28 * MB,
        props_bytes=8 * MB,
        iterations=48,
        gpu_flops_per_iter=3.5e+07,
        touched_fraction=0.30,  # BFS touches under a third of the data
        passes_per_iter=4,
        uses_worklist=True,
        worklist_bytes=4 * MB,
    )


def _bfs_wlw() -> Pipeline:
    return graph_app(
        "lonestar/bfs_wlw",
        graph_bytes=28 * MB,
        props_bytes=8 * MB,
        iterations=64,
        gpu_flops_per_iter=2.75e+07,
        touched_fraction=0.28,
        passes_per_iter=3.5,
        uses_worklist=True,
        worklist_bytes=6 * MB,
    )


def _bh() -> Pipeline:
    """Barnes-Hut n-body: large GPU-only temporary tree, copies that the
    limited-copy port cannot remove (the one benchmark whose copy count does
    not fall)."""
    b = PipelineBuilder("lonestar/bh", metadata={"outputs": ("bodies",)})
    b.buffer("bodies", 12 * MB)
    b.buffer("tree", 30 * MB, temporary=True)
    # Double-buffered copies the runtime cannot prove safe to remove.
    b.copy_h2d("bodies", mirror=False)
    for step in range(3):
        b.gpu_kernel(
            f"build_tree_{step}",
            flops=120e6,
            reads=[BufferAccess("bodies_dev", AccessPattern.STREAMING, passes=2.0)],
            writes=[BufferAccess("tree", AccessPattern.RANDOM, fraction=0.7)],
            efficiency=0.2,
        )
        b.gpu_kernel(
            f"force_calc_{step}",
            flops=900e6,
            reads=[
                BufferAccess("tree", AccessPattern.GRAPH, fraction=0.8, passes=6.0),
                BufferAccess("bodies_dev", AccessPattern.STREAMING),
            ],
            writes=[BufferAccess("bodies_dev", AccessPattern.STREAMING)],
            efficiency=0.3,
        )
    b.copy_d2h("bodies_dev", "bodies", mirror=False, name="d2h_bodies")
    return b.build()


def _dmr() -> Pipeline:
    """Delaunay mesh refinement: wide inter-stage data dependencies make it
    the Lonestar benchmark that cannot be pipeline-parallelized."""
    return graph_app(
        "lonestar/dmr",
        graph_bytes=36 * MB,
        props_bytes=12 * MB,
        iterations=40,
        gpu_flops_per_iter=1.1e+08,
        touched_fraction=0.55,
        passes_per_iter=4.5,
        uses_worklist=True,
        worklist_bytes=8 * MB,
    )


def _mst() -> Pipeline:
    return graph_app(
        "lonestar/mst",
        graph_bytes=30 * MB,
        props_bytes=10 * MB,
        iterations=56,
        gpu_flops_per_iter=5.5e+07,
        touched_fraction=0.6,
        passes_per_iter=4,
        uses_worklist=True,
        worklist_bytes=5 * MB,
    )


def _pta() -> Pipeline:
    return graph_app(
        "lonestar/pta",
        graph_bytes=24 * MB,
        props_bytes=10 * MB,
        iterations=72,
        gpu_flops_per_iter=4.5e+07,
        touched_fraction=0.7,
        passes_per_iter=5,
        uses_worklist=True,
        worklist_bytes=6 * MB,
    )


def _sp() -> Pipeline:
    """Survey propagation: iterative message passing, no worklist."""
    return graph_app(
        "lonestar/sp",
        graph_bytes=26 * MB,
        props_bytes=14 * MB,
        iterations=64,
        gpu_flops_per_iter=1.3e+08,
        touched_fraction=0.85,
        passes_per_iter=3.5,
        efficiency=0.25,
    )


def _sssp(variant: str, iterations: int, flops: float, fraction: float) -> Pipeline:
    return graph_app(
        f"lonestar/{variant}",
        graph_bytes=32 * MB,
        props_bytes=9 * MB,
        iterations=iterations,
        gpu_flops_per_iter=flops,
        touched_fraction=fraction,
        passes_per_iter=4,
        uses_worklist=True,
        worklist_bytes=6 * MB,
    )


def _tsp() -> Pipeline:
    """2-opt TSP: dense tour matrix, the suite's one regular-access member."""
    b = PipelineBuilder("lonestar/tsp", metadata={"outputs": ("tour",)})
    b.buffer("coords", 8 * MB, cpu_line_aligned=False)
    b.buffer("tour", 2 * MB)
    b.copy_h2d("coords")
    b.copy_h2d("tour")
    for step in range(4):
        b.gpu_kernel(
            f"two_opt_{step}",
            flops=1.6e9,
            reads=[
                BufferAccess("coords_dev", AccessPattern.STREAMING, passes=6.0),
                # 2-opt inspects the current tour before exchanging edges;
                # without this read the initial h2d tour fill is dead code
                # (each sweep would overwrite a tour nobody looked at).
                BufferAccess("tour_dev", AccessPattern.STREAMING),
            ],
            writes=[BufferAccess("tour_dev", AccessPattern.STREAMING)],
            efficiency=0.6,
        )
    b.copy_d2h("tour_dev", "tour", name="d2h_tour")
    return b.build()


def specs() -> Tuple[BenchmarkSpec, ...]:
    return (
        _spec("bfs", "breadth-first search (worklist)", _bfs,
              sw_queue=True, bandwidth_limited=True),
        _spec("bfs_wlw", "BFS, warp-cooperative worklist", _bfs_wlw,
              sw_queue=True, bandwidth_limited=True),
        _spec("bfs_atomic", "BFS, atomic worklist (not simulated)", None,
              sw_queue=True, bandwidth_limited=True),
        _spec("bh", "Barnes-Hut n-body", _bh, bandwidth_limited=True),
        _spec("bh_nosort", "Barnes-Hut without sorting (not simulated)", None),
        _spec("dmr", "Delaunay mesh refinement", _dmr,
              pipe_parallel=False, sw_queue=True, bandwidth_limited=True),
        _spec("mst", "minimum spanning tree", _mst,
              sw_queue=True, bandwidth_limited=True),
        _spec("mst_comp", "MST, component-based (not simulated)", None, sw_queue=True),
        _spec("pta", "points-to analysis", _pta,
              sw_queue=True, bandwidth_limited=True),
        _spec("sp", "survey propagation", _sp, bandwidth_limited=True),
        _spec("sssp", "single-source shortest paths",
              lambda: _sssp("sssp", 7, 480e6, 0.6),
              sw_queue=True, bandwidth_limited=True),
        _spec("sssp_wlc", "SSSP, chunked worklist",
              lambda: _sssp("sssp_wlc", 6, 560e6, 0.55), sw_queue=True),
        _spec("sssp_wln", "SSSP, near-far worklist; numerous serialized kernels",
              lambda: _sssp("sssp_wln", 12, 240e6, 0.4),
              sw_queue=True, bandwidth_limited=True),
        _spec("tsp", "travelling salesman 2-opt", _tsp,
              irregular=False, misaligned=True),
    )
