"""Per-suite benchmark definitions (Lonestar, Pannotia, Parboil, Rodinia)."""
