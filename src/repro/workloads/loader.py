"""Declarative workload definitions: build pipelines from dicts / JSON.

Lets users describe a benchmark in data rather than code::

    {
      "name": "myapp/pipeline",
      "outputs": ["out"],
      "buffers": [
        {"name": "in", "size": "24MB"},
        {"name": "out", "size": "8MB"}
      ],
      "stages": [
        {"op": "h2d", "buffer": "in", "chunkable": true},
        {"op": "gpu", "name": "kernel", "flops": 2e9,
         "reads": [{"buffer": "in_dev", "pattern": "streaming"}],
         "writes": [{"buffer": "out_dev"}], "chunkable": true},
        {"op": "d2h", "src": "out_dev", "dst": "out", "name": "drain"}
      ]
    }

Mirrors are created implicitly by ``h2d`` (as with the builder) or
explicitly with ``{"op": "mirror", "buffer": ...}``.  Sizes accept either
integers (bytes) or strings with ``KB``/``MB``/``GB`` suffixes.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Mapping, Optional

from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.graph import Pipeline, PipelineError
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, KernelResources, Region
from repro.units import GB, KB, MB

_SIZE_RE = re.compile(r"^\s*([0-9.]+)\s*(B|KB|MB|GB)\s*$", re.IGNORECASE)
_SUFFIX = {"B": 1, "KB": KB, "MB": MB, "GB": GB}


class WorkloadSpecError(PipelineError):
    """Raised when a declarative workload definition is malformed."""


def parse_size(value: Any) -> int:
    """Accept 4096 or '4KB' / '24MB' / '1.5GB'."""
    if isinstance(value, bool):
        raise WorkloadSpecError(f"invalid size {value!r}")
    if isinstance(value, (int, float)):
        if value <= 0:
            raise WorkloadSpecError(f"size must be positive, got {value}")
        return int(value)
    if isinstance(value, str):
        match = _SIZE_RE.match(value)
        if not match:
            raise WorkloadSpecError(f"cannot parse size {value!r}")
        return int(float(match.group(1)) * _SUFFIX[match.group(2).upper()])
    raise WorkloadSpecError(f"invalid size {value!r}")


def _parse_pattern(value: Optional[str]) -> AccessPattern:
    if value is None:
        return AccessPattern.STREAMING
    try:
        return AccessPattern(value)
    except ValueError:
        options = ", ".join(p.value for p in AccessPattern)
        raise WorkloadSpecError(
            f"unknown access pattern {value!r}; choose from: {options}"
        ) from None


def _parse_access(entry: Mapping[str, Any]) -> BufferAccess:
    if "buffer" not in entry:
        raise WorkloadSpecError(f"access needs a 'buffer': {entry!r}")
    region = Region()
    if "region" in entry:
        lo, hi = entry["region"]
        region = Region(float(lo), float(hi))
    return BufferAccess(
        buffer=entry["buffer"],
        pattern=_parse_pattern(entry.get("pattern")),
        region=region,
        fraction=float(entry.get("fraction", 1.0)),
        passes=float(entry.get("passes", 1.0)),
        broadcast=bool(entry.get("broadcast", False)),
    )


def _parse_resources(entry: Optional[Mapping[str, Any]]) -> Optional[KernelResources]:
    if entry is None:
        return None
    scratch = entry.get("scratch_per_cta", 0)
    return KernelResources(
        threads_per_cta=int(entry.get("threads_per_cta", 256)),
        registers_per_thread=int(entry.get("registers_per_thread", 24)),
        scratch_bytes_per_cta=parse_size(scratch) if scratch else 0,
    )


def pipeline_from_dict(spec: Mapping[str, Any]) -> Pipeline:
    """Build a validated pipeline from a declarative definition."""
    if "name" not in spec:
        raise WorkloadSpecError("workload needs a 'name'")
    metadata: Dict[str, Any] = {"outputs": tuple(spec.get("outputs", ()))}
    if spec.get("pagefault_heavy"):
        metadata["pagefault_heavy"] = True
    builder = PipelineBuilder(spec["name"], metadata=metadata)

    for entry in spec.get("buffers", ()):
        if "name" not in entry or "size" not in entry:
            raise WorkloadSpecError(f"buffer needs 'name' and 'size': {entry!r}")
        builder.buffer(
            entry["name"],
            parse_size(entry["size"]),
            temporary=bool(entry.get("temporary", False)),
            cpu_line_aligned=bool(entry.get("aligned", True)),
        )

    for index, entry in enumerate(spec.get("stages", ())):
        op = entry.get("op")
        after = entry.get("after")
        if op == "mirror":
            builder.mirror(entry["buffer"])
        elif op == "h2d":
            builder.copy_h2d(
                entry["buffer"],
                entry.get("dst"),
                name=entry.get("name"),
                mirror=bool(entry.get("mirror", True)),
                after=after,
                chunkable=bool(entry.get("chunkable", False)),
            )
        elif op == "d2h":
            if "src" not in entry or "dst" not in entry:
                raise WorkloadSpecError(f"d2h needs 'src' and 'dst': {entry!r}")
            builder.copy_d2h(
                entry["src"],
                entry["dst"],
                name=entry.get("name"),
                mirror=bool(entry.get("mirror", True)),
                after=after,
                chunkable=bool(entry.get("chunkable", False)),
            )
        elif op in ("gpu", "cpu"):
            if "name" not in entry:
                raise WorkloadSpecError(f"stage {index} needs a 'name'")
            kwargs = dict(
                flops=float(entry.get("flops", 0.0) or 1e-9),
                reads=[_parse_access(a) for a in entry.get("reads", ())],
                writes=[_parse_access(a) for a in entry.get("writes", ())],
                after=after,
                chunkable=bool(entry.get("chunkable", False)),
                migratable=bool(entry.get("migratable", False)),
            )
            if "efficiency" in entry:
                kwargs["efficiency"] = float(entry["efficiency"])
            if "occupancy" in entry:
                kwargs["occupancy"] = float(entry["occupancy"])
            if op == "gpu":
                kwargs["resources"] = _parse_resources(entry.get("resources"))
                builder.gpu_kernel(entry["name"], **kwargs)
            else:
                builder.cpu_stage(entry["name"], **kwargs)
        else:
            raise WorkloadSpecError(
                f"stage {index}: unknown op {op!r} "
                "(expected mirror/h2d/d2h/gpu/cpu)"
            )

    return builder.build()


def pipeline_from_json(text: str) -> Pipeline:
    """Parse a JSON document and build the pipeline it describes."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise WorkloadSpecError(f"invalid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise WorkloadSpecError("top-level JSON value must be an object")
    return pipeline_from_dict(payload)


def pipeline_from_file(path: str) -> Pipeline:
    """Load a pipeline definition from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return pipeline_from_json(handle.read())
