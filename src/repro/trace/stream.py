"""Block-granularity access streams.

The cache simulator consumes flat streams of (block id, is_write) records.
Block ids index a single global block-granule address space laid out by
:class:`repro.trace.generator.BufferLayout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class AccessStream:
    """A sequence of cache-block accesses in program order."""

    blocks: np.ndarray  # int64 block ids
    is_write: np.ndarray  # bool, parallel to blocks

    def __post_init__(self) -> None:
        if self.blocks.shape != self.is_write.shape:
            raise ValueError("blocks and is_write must have identical shapes")
        if self.blocks.ndim != 1:
            raise ValueError("streams are one-dimensional")

    def __len__(self) -> int:
        return int(self.blocks.shape[0])

    @property
    def num_reads(self) -> int:
        return int(len(self) - self.is_write.sum())

    @property
    def num_writes(self) -> int:
        return int(self.is_write.sum())

    def unique_blocks(self) -> np.ndarray:
        return np.unique(self.blocks)

    @staticmethod
    def empty() -> "AccessStream":
        return AccessStream(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool))

    @staticmethod
    def of(blocks: Sequence[int], is_write: bool = False) -> "AccessStream":
        """Build a stream of all-read or all-write accesses."""
        arr = np.asarray(blocks, dtype=np.int64)
        return AccessStream(arr, np.full(arr.shape, is_write, dtype=bool))


def concatenate(streams: Iterable[AccessStream]) -> AccessStream:
    """Join streams back to back."""
    streams = [s for s in streams if len(s)]
    if not streams:
        return AccessStream.empty()
    return AccessStream(
        np.concatenate([s.blocks for s in streams]),
        np.concatenate([s.is_write for s in streams]),
    )


def interleave(streams: Sequence[AccessStream]) -> AccessStream:
    """Merge streams proportionally, preserving each stream's own order.

    Every access is assigned a fractional position (i + 0.5) / n within its
    stream and the merged stream is sorted by position (stable), so a
    1000-access read stream and a 100-access write stream interleave at
    roughly 10:1 — the way a kernel's loads and stores mix in practice.
    """
    streams = [s for s in streams if len(s)]
    if not streams:
        return AccessStream.empty()
    if len(streams) == 1:
        return streams[0]
    positions = np.concatenate(
        [(np.arange(len(s)) + 0.5) / len(s) for s in streams]
    )
    blocks = np.concatenate([s.blocks for s in streams])
    is_write = np.concatenate([s.is_write for s in streams])
    order = np.argsort(positions, kind="stable")
    return AccessStream(blocks[order], is_write[order])
