"""Trace layer: synthetic block-granularity access streams."""

from repro.trace.alignment import MISALIGN_EXTRA_PASSES, apply_misalignment
from repro.trace.generator import BufferLayout, StageTrace, TraceGenerator
from repro.trace.stream import AccessStream, concatenate, interleave

__all__ = [
    "AccessStream",
    "BufferLayout",
    "MISALIGN_EXTRA_PASSES",
    "StageTrace",
    "TraceGenerator",
    "apply_misalignment",
    "concatenate",
    "interleave",
]
