"""Synthetic access-stream generation for pipeline stages.

Each :class:`repro.pipeline.stage.BufferAccess` is expanded into a
block-granularity address stream according to its pattern.  Generation is
fully deterministic: every (pipeline, seed, stage) triple produces an
identical stream, which the test suite relies on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, MutableMapping, Optional, Tuple

import numpy as np

from repro.pipeline.buffers import Buffer
from repro.pipeline.graph import Pipeline
from repro.pipeline.patterns import AccessPattern
from repro.pipeline.stage import BufferAccess, Stage, StageKind
from repro.trace.alignment import apply_misalignment
from repro.trace.stream import AccessStream, interleave

#: Fraction of graph-pattern accesses that hit the "hot" high-degree blocks.
GRAPH_HOT_ACCESS_FRACTION = 0.3
#: Fraction of a graph region considered hot.
GRAPH_HOT_BLOCK_FRACTION = 0.05

#: Patterns whose synthesis never draws from the RNG: their parts are a
#: pure function of (block range, fraction, passes), so a memo can share
#: them across stages and seeds.  RANDOM/POINTER_CHASE/GRAPH sample from
#: the per-(seed, pipeline, stage, access) RNG and memoize per seed.
_RNG_FREE_PATTERNS = frozenset(
    {
        AccessPattern.STREAMING,
        AccessPattern.STRIDED,
        AccessPattern.REDUCTION,
        AccessPattern.BROADCAST,
        AccessPattern.STENCIL,
    }
)

#: Entry bound of a trace-part memo; cleared wholesale when exceeded so a
#: long-lived process sweeping many scales cannot grow without limit.
_MEMO_MAX_ENTRIES = 1024


class BufferLayout:
    """Assigns every buffer a page-aligned base block in a flat address space."""

    def __init__(self, pipeline: Pipeline, line_bytes: int = 128, page_bytes: int = 4096):
        if page_bytes % line_bytes:
            raise ValueError("page size must be a multiple of the line size")
        self.line_bytes = line_bytes
        self.page_bytes = page_bytes
        self.blocks_per_page = page_bytes // line_bytes
        self._base: Dict[str, int] = {}
        self._blocks: Dict[str, int] = {}
        cursor = 0
        for name in sorted(pipeline.buffers):
            buf = pipeline.buffers[name]
            nblocks = -(-buf.size_bytes // line_bytes)  # ceil division
            self._base[name] = cursor
            self._blocks[name] = nblocks
            # Advance to the next page boundary so buffers never share pages.
            pages = -(-nblocks // self.blocks_per_page)
            cursor += pages * self.blocks_per_page
        self.total_blocks = cursor

    def base_block(self, buffer: str) -> int:
        return self._base[buffer]

    def num_blocks(self, buffer: str) -> int:
        return self._blocks[buffer]

    def block_range(self, access: BufferAccess) -> Tuple[int, int]:
        """The [start, end) global block range an access's region covers."""
        base = self._base[access.buffer]
        nblocks = self._blocks[access.buffer]
        lo = base + int(np.floor(access.region.start * nblocks))
        hi = base + max(lo - base + 1, int(np.ceil(access.region.end * nblocks)))
        hi = min(hi, base + nblocks)
        if hi <= lo:
            hi = lo + 1
        return lo, hi

    def pages_of(self, blocks: np.ndarray) -> np.ndarray:
        """Unique page ids covering the given block ids."""
        return np.unique(blocks // self.blocks_per_page)


def _stable_seed(*parts: object) -> int:
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


def _touched_blocks(lo: int, hi: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """The set of blocks a sparse traversal visits, as a sorted array."""
    span = hi - lo
    count = max(1, int(round(span * fraction)))
    if count >= span:
        return np.arange(lo, hi, dtype=np.int64)
    # Evenly spaced subset keeps the touched set stable across passes.
    idx = np.linspace(0, span - 1, count).astype(np.int64)
    return lo + idx


def _repeat_passes(sweep: np.ndarray, passes: float) -> np.ndarray:
    """Tile one sweep ``passes`` times (fractional passes truncate)."""
    total = max(1, int(round(len(sweep) * passes)))
    whole, rem = divmod(total, len(sweep))
    parts = [sweep] * whole
    if rem:
        parts.append(sweep[:rem])
    if not parts:
        parts = [sweep[:1]]
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _synthesize(
    access: BufferAccess,
    lo: int,
    hi: int,
    rng: np.random.Generator,
    max_accesses: int,
) -> np.ndarray:
    touched = _touched_blocks(lo, hi, access.fraction, rng)
    pattern = access.pattern
    if pattern in (
        AccessPattern.STREAMING,
        AccessPattern.STRIDED,
        AccessPattern.REDUCTION,
        AccessPattern.BROADCAST,
    ):
        blocks = _repeat_passes(touched, access.passes)
    elif pattern is AccessPattern.STENCIL:
        # Each sweep position also touches its vertical neighbours one row
        # above and below (row width ~ sqrt of the region).
        width = max(1, int(np.sqrt(len(touched))))
        centre = np.arange(len(touched), dtype=np.int64)
        rows = np.stack([centre - width, centre, centre + width], axis=1)
        np.clip(rows, 0, len(touched) - 1, out=rows)
        sweep = touched[rows.reshape(-1)]
        blocks = _repeat_passes(sweep, access.passes)
    elif pattern in (AccessPattern.RANDOM, AccessPattern.POINTER_CHASE):
        count = max(1, int(round(len(touched) * access.passes)))
        blocks = touched[rng.integers(0, len(touched), size=count)]
    elif pattern is AccessPattern.GRAPH:
        count = max(1, int(round(len(touched) * access.passes)))
        hot_size = max(1, int(len(touched) * GRAPH_HOT_BLOCK_FRACTION))
        hot_count = int(count * GRAPH_HOT_ACCESS_FRACTION)
        cold_count = count - hot_count
        hot = touched[rng.integers(0, hot_size, size=hot_count)]
        cold = touched[rng.integers(0, len(touched), size=cold_count)]
        # Hot accesses are spread through the traversal, not clustered.
        blocks = np.empty(count, dtype=np.int64)
        positions = rng.permutation(count)
        blocks[positions[:hot_count]] = hot
        blocks[positions[hot_count:]] = cold
    else:  # pragma: no cover - exhaustive over AccessPattern
        raise NotImplementedError(f"pattern {pattern}")
    if len(blocks) > max_accesses:
        blocks = blocks[:max_accesses]
    return blocks.astype(np.int64, copy=False)


@dataclass(frozen=True)
class StageTrace:
    """A stage's generated stream plus summary statistics."""

    stream: AccessStream
    unique_blocks: int
    bytes_touched: int
    #: Sorted unique block ids of the stream (consumers needing the footprint
    #: reuse this instead of recomputing ``np.unique``).  Shared, do not
    #: mutate.
    unique_ids: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))


class TraceGenerator:
    """Generates deterministic access streams for every stage of a pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        line_bytes: int = 128,
        seed: int = 0,
        page_bytes: int = 4096,
        max_accesses_per_access: int = 8_000_000,
        memo: Optional[MutableMapping] = None,
    ):
        self.pipeline = pipeline
        self.layout = BufferLayout(pipeline, line_bytes=line_bytes, page_bytes=page_bytes)
        self.seed = seed
        self.max_accesses = max_accesses_per_access
        #: Optional part-level memo (key -> AccessStream).  Keys capture
        #: everything a part depends on — including the stable per-access
        #: seed whenever the RNG is consumed — so entries may be shared
        #: across generators (the engine passes one process-wide dict).
        #: Memoized streams are shared objects and must not be mutated.
        self.memo = memo

    def _seed_for(self, stage: Stage, access_index: int) -> int:
        return _stable_seed(self.seed, self.pipeline.name, stage.name, access_index)

    def _rng(self, stage: Stage, access_index: int) -> np.random.Generator:
        return np.random.default_rng(self._seed_for(stage, access_index))

    def _misaligned(self, stage: Stage, access: BufferAccess) -> bool:
        if not self.pipeline.limited_copy or stage.kind is not StageKind.GPU_KERNEL:
            return False
        buf: Buffer = self.pipeline.buffers[access.buffer]
        return not buf.cpu_line_aligned

    def _part_key(
        self,
        stage: Stage,
        access: BufferAccess,
        access_index: int,
        is_write: bool,
    ) -> Tuple:
        """Everything one access's sub-stream depends on, as a hashable key.

        RNG-free parts drop the seed from the key so identical
        (range, pattern) accesses share across stages and pipelines.
        """
        lo, hi = self.layout.block_range(access)
        misaligned = self._misaligned(stage, access)
        uses_rng = misaligned or access.pattern not in _RNG_FREE_PATTERNS
        return (
            self._seed_for(stage, access_index) if uses_rng else None,
            lo,
            hi,
            access.pattern.value,
            access.fraction,
            access.passes,
            self.max_accesses,
            misaligned,
            is_write,
        )

    def _memo_put(self, key: Tuple, value: object) -> None:
        if len(self.memo) >= _MEMO_MAX_ENTRIES:
            self.memo.clear()
        self.memo[key] = value

    def _part(
        self,
        stage: Stage,
        access: BufferAccess,
        access_index: int,
        is_write: bool,
    ) -> AccessStream:
        """One access's sub-stream, memoized when a memo is attached."""
        if self.memo is not None:
            key = self._part_key(stage, access, access_index, is_write)
            cached = self.memo.get(key)
            if cached is not None:
                return cached
        else:
            key = None
        lo, hi = self.layout.block_range(access)
        misaligned = self._misaligned(stage, access)
        rng = self._rng(stage, access_index)
        blocks = _synthesize(access, lo, hi, rng, self.max_accesses)
        part = AccessStream(
            blocks, np.full(len(blocks), is_write, dtype=bool)
        )
        if misaligned:
            part = apply_misalignment(part, rng)
        if key is not None:
            self._memo_put(key, part)
        return part

    def _stage_key(self, stage: Stage) -> Tuple:
        """A whole stage's trace is determined by its parts' keys in order."""
        return ("stage",) + tuple(
            self._part_key(stage, access, index + offset, is_write)
            for offset, accesses, is_write in (
                (0, stage.reads, False),
                (1000, stage.writes, True),
            )
            for index, access in enumerate(accesses)
        )

    def stage_trace(self, stage: Stage) -> StageTrace:
        """Generate the full (interleaved) access stream for one stage."""
        if self.memo is not None:
            # Iterated pipelines replay identical stages many times; the
            # interleave and the unique-block count both memoize at stage
            # granularity on top of the per-part memo.
            stage_key = self._stage_key(stage)
            cached = self.memo.get(stage_key)
            if cached is not None:
                return cached
        else:
            stage_key = None
        parts = []
        for index, access in enumerate(stage.reads):
            parts.append(self._part(stage, access, index, is_write=False))
        for index, access in enumerate(stage.writes):
            parts.append(self._part(stage, access, 1000 + index, is_write=True))
        stream = interleave(parts)
        unique_ids = (
            np.unique(stream.blocks) if len(stream) else np.empty(0, np.int64)
        )
        trace = StageTrace(
            stream=stream,
            unique_blocks=len(unique_ids),
            bytes_touched=len(unique_ids) * self.layout.line_bytes,
            unique_ids=unique_ids,
        )
        if stage_key is not None:
            self._memo_put(stage_key, trace)
        return trace
