"""Architectural design-space exploration with the simulator.

An architect's view: vary one hardware parameter at a time — PCIe
bandwidth, shared-cache capacity, page-fault service latency — and watch
which software inefficiency each mechanism exposes or hides.

Run with::

    python examples/design_space.py [--scale 0.03125]
"""

import argparse

from repro import SimOptions
from repro.experiments import ablations
from repro.units import seconds_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 32)
    args = parser.parse_args()
    options = SimOptions(scale=args.scale)

    print("1. PCIe bandwidth vs kmeans baseline (Section II asymmetry)")
    print(f"   {'PCIe':>8s} {'run time':>12s} {'copy share':>11s}")
    for row in ablations.pcie_sweep(options=options):
        print(f"   {row.pcie_gbps:>5.0f}GB/s {seconds_to_human(row.runtime_s):>12s} "
              f"{row.copy_share:>10.0%}")
    print("   -> at 8 GB/s the copy engine dominates; bandwidth parity with\n"
          "      memory would erase the incentive for bulk-synchronous code.\n")

    print("2. GPU L2 capacity vs kmeans cache contention (Section V-C)")
    print(f"   {'L2 scale':>9s} {'contention':>11s} {'spills':>7s} {'off-chip':>10s}")
    for row in ablations.cache_size_sweep(options=options):
        print(f"   {row.gpu_l2_scale:>8.1f}x {row.contention_fraction:>10.0%} "
              f"{row.spill_fraction:>6.0%} {row.offchip_accesses:>10,}")
    print("   -> capacity helps, but contention persists until working sets\n"
          "      fit: software chunking beats raw capacity.\n")

    print("3. Page-fault service latency vs srad (Section IV)")
    print(f"   {'latency':>9s} {'run time':>12s} {'slowdown':>9s}")
    for row in ablations.pagefault_sweep(options=options):
        print(f"   {row.service_latency_us:>7.1f}us "
              f"{seconds_to_human(row.runtime_s):>12s} "
              f"{row.slowdown_vs_no_faults:>8.2f}x")
    print("   -> CPU-handled GPU page faults are the heterogeneous\n"
          "      processor's Achilles heel for write-first workloads; the\n"
          "      paper flags GPU-side fault handling as future research.\n")

    align = ablations.alignment_ablation(options=options)
    print("4. Allocation alignment (Fig. 5 '*' benchmarks)")
    print(f"   sgemm limited-copy GPU off-chip accesses: "
          f"{align.aligned_gpu_accesses:,} aligned vs "
          f"{align.misaligned_gpu_accesses:,} misaligned "
          f"({align.inflation:+.0%})")
    print("   -> an aligned allocator recovers the loss for free.")


if __name__ == "__main__":
    main()
