"""Per-benchmark optimization guidance from the Section VI advisor.

Combines the simulator with the analytical models to answer the question a
developer would actually ask: "which of the paper's optimizations should I
apply to *my* benchmark, and what is each worth?"  Also demonstrates the
forward-looking transforms (kernel fusion, GPU-to-CPU migration) and the
Section V-C programmer aids (footprint report, roofline).

Run with::

    python examples/optimization_advisor.py [--benchmark rodinia/srad]
                                            [--jobs 2] [--no-cache]
"""

import argparse

from repro import (
    Component,
    SimOptions,
    discrete_gpu_system,
    fuse_kernels,
    heterogeneous_processor,
    remove_copies,
    simulate,
    workloads,
)
from repro.core.reuse import concurrent_footprint_report
from repro.core.roofline import memory_bound_fraction, roofline_report
from repro.experiments.advisor import advise
from repro.experiments.runner import SweepRunner
from repro.sim.resultcache import default_cache_dir
from repro.sim.timeline import render_timeline
from repro.units import MB, bytes_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="rodinia/srad")
    parser.add_argument("--scale", type=float, default=1 / 32)
    parser.add_argument("--jobs", type=int, default=0,
                        help="sweep workers (0 = all cores, 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache")
    args = parser.parse_args()

    spec = workloads.get(args.benchmark)
    runner = SweepRunner(
        options=SimOptions(scale=args.scale),
        parallel=args.jobs,
        cache_dir=None if args.no_cache else default_cache_dir(),
    )

    # 1. Ranked recommendations.
    report = advise(spec, runner)
    print(report.render())

    # 2. Where the time goes (both organizations).
    pair = runner.pair(spec)
    print()
    print(render_timeline(pair.copy))
    print()
    print(render_timeline(pair.limited))

    # 3. Roofline: is the limited-copy version compute- or memory-bound?
    points = roofline_report(pair.limited, runner.heterogeneous)
    fraction = memory_bound_fraction(points)
    print(f"\nRoofline: {fraction:.0%} of compute-stage time is memory-bound")

    # 4. Section V-C programmer aid: what must fit in cache?
    pipeline = remove_copies(spec.pipeline()).scaled(args.scale)
    cache = runner.heterogeneous.scaled(args.scale).gpu.l2.capacity_bytes
    footprint = concurrent_footprint_report(pipeline, cache_bytes=cache)
    over = footprint.overcommitted_stages
    print(
        f"Cache plan: {len(over)} of {len(footprint.footprints)} stages "
        f"exceed the {bytes_to_human(cache)} GPU L2"
    )
    for stage in over[:5]:
        chunks = footprint.recommended_chunks(stage.stage)
        print(
            f"  {stage.stage}: {bytes_to_human(stage.unique_bytes)} live "
            f"-> chunk x{chunks} to fit"
        )

    # 5. Try the Section VI kernel-fusion transform where it applies.
    limited = remove_copies(spec.pipeline())
    fused = fuse_kernels(limited)
    if len(fused.stages) < len(limited.stages):
        options = SimOptions(scale=args.scale)
        before = simulate(limited, heterogeneous_processor(), options)
        after = simulate(fused, heterogeneous_processor(), options)
        print(
            f"\nKernel fusion: {len(limited.stages) - len(fused.stages)} stages "
            f"merged; off-chip accesses {before.offchip_accesses():,} -> "
            f"{after.offchip_accesses():,}"
        )
    else:
        print("\nKernel fusion: no fusable producer-consumer kernel pairs")


if __name__ == "__main__":
    main()
