"""The Section II kmeans case study: five organizations, one benchmark.

Walks kmeans through the paper's optimization sequence — baseline,
asynchronous copy streams, copy removal, producer-consumer overlap, and
in-cache data handoff — and prints the Fig. 3 run-time/utilization series.

Run with::

    python examples/kmeans_case_study.py [--scale 0.03125]
"""

import argparse

from repro import SimOptions
from repro.core.casestudy import kmeans_case_study
from repro.units import seconds_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 32)
    parser.add_argument("--streams", type=int, default=3,
                        help="width of the async-copy stream organization")
    parser.add_argument("--chunks", type=int, default=64,
                        help="producer-consumer chunk count")
    args = parser.parse_args()

    results = kmeans_case_study(
        options=SimOptions(scale=args.scale),
        streams=args.streams,
        chunks=args.chunks,
    )
    baseline = results[0].runtime_s

    print(f"{'Organization':22s} {'run time':>12s} {'normalized':>11s} "
          f"{'GPU util':>9s}")
    for r in results:
        star = " (estimate)" if r.estimated else ""
        print(
            f"{r.label:22s} {seconds_to_human(r.runtime_s):>12s} "
            f"{r.runtime_s / baseline:>10.2f}x {r.gpu_utilization:>8.0%}"
            f"{star}"
        )

    final = results[-1]
    print(
        f"\nRun time recovered vs baseline: {1 - final.runtime_s / baseline:.0%} "
        f"(paper: up to 77%)"
    )
    print(
        "Takeaway: removing copies buys ~2x, and overlap plus in-cache\n"
        "producer-consumer handoff on the heterogeneous processor buys ~2x\n"
        "more — optimizations that are impractical on a discrete GPU."
    )


if __name__ == "__main__":
    main()
