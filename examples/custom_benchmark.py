"""Author a new benchmark pipeline and characterize it.

Shows the full authoring API on a workload that is not in the four suites:
a video-analytics pipeline (decode on CPU, per-frame GPU feature
extraction, CPU tracking update), then applies the paper's analysis —
porting, overlap estimate, chunked overlap simulation, and off-chip access
classification.

Run with::

    python examples/custom_benchmark.py [--scale 0.03125]
"""

import argparse

from repro import (
    AccessPattern,
    BufferAccess,
    Component,
    PipelineBuilder,
    SimOptions,
    classify_result,
    component_overlap_runtime,
    discrete_gpu_system,
    heterogeneous_processor,
    parallel_producer_consumer,
    remove_copies,
    simulate,
)
from repro.core.overlap import ComponentTimes
from repro.units import MB, seconds_to_human


def build_video_analytics(frames: int = 6):
    """Decode -> GPU feature extraction -> CPU track update, per frame."""
    b = PipelineBuilder("custom/video_analytics",
                        metadata={"outputs": ("tracks",)})
    b.buffer("frames", 24 * MB)
    b.buffer("features", 6 * MB)
    b.buffer("tracks", 1 * MB)
    b.mirror("features")
    for f in range(frames):
        # The CPU decodes the next frame region (pre-GPU producer work).
        b.cpu_stage(
            f"decode_{f}",
            flops=3e6,
            writes=[BufferAccess("frames", AccessPattern.STREAMING,
                                 region=frame_region(f, frames))],
            occupancy=0.25,
            chunkable=True,
        )
        # ... copies it to the GPU ...
        b.copy_h2d("frames", name=f"h2d_frame_{f}",
                   region=frame_region(f, frames), chunkable=True)
        # ... extracts features on the GPU ...
        b.gpu_kernel(
            f"features_{f}",
            flops=400e6,
            reads=[BufferAccess("frames_dev",
                                AccessPattern.STENCIL,
                                region=frame_region(f, frames))],
            writes=[BufferAccess("features_dev", AccessPattern.STREAMING)],
            efficiency=0.5,
            chunkable=True,
        )
        # ... and folds them into the track state on the CPU.
        b.copy_d2h("features_dev", "features", name=f"d2h_feat_{f}",
                   chunkable=True)
        b.cpu_stage(
            f"track_{f}",
            flops=6e6,
            reads=[BufferAccess("features", AccessPattern.STREAMING)],
            writes=[BufferAccess("tracks", AccessPattern.STREAMING, passes=2.0)],
            occupancy=0.25,
            chunkable=True,
            migratable=True,
        )
    return b.build()


def frame_region(index: int, count: int):
    from repro.pipeline.stage import Region

    return Region(index / count, (index + 1) / count)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 32)
    args = parser.parse_args()
    options = SimOptions(scale=args.scale)

    pipeline = build_video_analytics()
    print(f"Pipeline: {pipeline.name}, {len(pipeline.stages)} stages, "
          f"{pipeline.footprint_bytes / MB:.0f}MB footprint, "
          f"{len(pipeline.producer_consumer_edges())} producer-consumer edges")

    baseline = simulate(pipeline, discrete_gpu_system(), options)
    print(f"\nDiscrete baseline: {seconds_to_human(baseline.roi_s)} "
          f"(GPU util {baseline.utilization(Component.GPU):.0%})")

    # What would overlapping buy us?  Eq. 1 from the measured times.
    estimate = component_overlap_runtime(ComponentTimes.from_result(baseline))
    print(f"Component-overlap estimate (Eq. 1): "
          f"{seconds_to_human(estimate.runtime_s)} "
          f"(bottleneck: {estimate.bottleneck.value})")

    # Port to the heterogeneous processor and chunk producers/consumers.
    limited = remove_copies(pipeline)
    ported = simulate(limited, heterogeneous_processor(), options)
    chunked = simulate(
        parallel_producer_consumer(limited, 16), heterogeneous_processor(), options
    )
    print(f"\nHeterogeneous, limited-copy:  {seconds_to_human(ported.roi_s)}")
    print(f"Heterogeneous, chunked P-C:   {seconds_to_human(chunked.roi_s)} "
          f"(GPU util {chunked.utilization(Component.GPU):.0%})")

    # Where do the off-chip accesses come from?
    classification = classify_result(ported)
    print("\nOff-chip access classes (limited-copy):")
    for access_class, count in classification.counts.items():
        if count:
            print(f"  {access_class.value:16s} {count:8,} "
                  f"({classification.fraction(access_class):.0%})")
    print(f"\nTotal speedup vs discrete baseline: "
          f"{baseline.roi_s / chunked.roi_s:.2f}x")


if __name__ == "__main__":
    main()
