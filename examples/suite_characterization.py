"""Characterize a whole benchmark suite, Fig. 5/6/9 style.

Sweeps every simulatable benchmark of one suite through both system
organizations and prints per-benchmark run-time improvement, copy-access
share, and off-chip access classes — the workload-characterization view the
paper builds its argument from.

Run with::

    python examples/suite_characterization.py --suite pannotia [--scale 0.03125]
                                              [--jobs 8] [--no-cache]

The sweep fans out over ``--jobs`` worker processes and persists results to
the shared cache, so a re-run at the same scale prints instantly.
"""

import argparse

from repro import AccessClass, SimOptions, classify_result
from repro.core.metrics import geomean
from repro.experiments.runner import SweepRunner
from repro.sim.hierarchy import Component
from repro.sim.resultcache import default_cache_dir
from repro.workloads.registry import SUITES, suite_specs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=SUITES, default="pannotia")
    parser.add_argument("--scale", type=float, default=1 / 32)
    parser.add_argument("--jobs", type=int, default=0,
                        help="sweep workers (0 = all cores, 1 = serial)")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache")
    args = parser.parse_args()

    specs = [s for s in suite_specs(args.suite) if s.simulatable]
    runner = SweepRunner(
        options=SimOptions(scale=args.scale),
        parallel=args.jobs,
        cache_dir=None if args.no_cache else default_cache_dir(),
        verbose=True,
    )
    runs = runner.sweep(specs)

    print(f"{'Benchmark':24s} {'lc/copy':>8s} {'copy acc':>9s} "
          f"{'required':>9s} {'spills':>7s} {'contention':>11s}")
    ratios = []
    for spec in specs:
        pair = runs[spec.full_name]
        ratio = pair.limited.roi_s / pair.copy.roi_s
        ratios.append(ratio)
        accesses = pair.copy.offchip_by_component()
        copy_share = accesses[Component.COPY] / max(1, sum(accesses.values()))
        cls = classify_result(pair.limited)
        print(
            f"{spec.full_name:24s} {ratio:>7.2f}x {copy_share:>8.1%} "
            f"{cls.fraction(AccessClass.REQUIRED):>8.0%} "
            f"{cls.spill_fraction:>6.0%} {cls.contention_fraction:>10.0%}"
        )

    print(f"\nSuite geomean limited-copy/copy run time: {geomean(ratios):.2f}x")
    print(
        "High contention fractions flag the coordinated-cache-management\n"
        "opportunity of Section V-C: reducing those accesses directly cuts\n"
        "bandwidth demand for the bandwidth-limited members."
    )


if __name__ == "__main__":
    main()
