"""The parallel, persistently-cached sweep the whole harness is built on.

Runs the full 46x2 copy / limited-copy sweep twice with the same options:
the first pass fans simulations out over a process pool and stores every
result in the content-addressed cache; the second pass simulates nothing
and replays the sweep from disk, bit-identically.  The printed metrics
lines show launched runs, cache hits, wall time, and the estimated serial
time saved.

Run with::

    python examples/parallel_sweep.py [--scale 0.03125] [--jobs 8]
                                      [--cache-dir /tmp/my-sweeps]
"""

import argparse
import tempfile

from repro import SimOptions
from repro.core.metrics import geomean
from repro.experiments.runner import SweepRunner
from repro.sim.serialize import results_identical


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1 / 32)
    parser.add_argument("--jobs", type=int, default=0,
                        help="sweep workers (0 = all cores, 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a fresh temp dir, "
                        "so both passes are self-contained)")
    args = parser.parse_args()

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="repro-sweep-")
    options = SimOptions(scale=args.scale)

    print(f"cold sweep (cache: {cache_dir}) ...")
    cold = SweepRunner(options=options, parallel=args.jobs,
                       cache_dir=cache_dir, verbose=True)
    first = cold.sweep()

    print("warm sweep (same options, fresh runner) ...")
    warm = SweepRunner(options=options, parallel=args.jobs,
                       cache_dir=cache_dir, verbose=True)
    second = warm.sweep()

    assert warm.last_metrics.launched == 0, "warm sweep should simulate nothing"
    assert all(
        results_identical(first[name].copy, second[name].copy)
        and results_identical(first[name].limited, second[name].limited)
        for name in first
    ), "cached results must be bit-identical"

    ratios = [
        pair.limited.roi_s / pair.copy.roi_s
        for pair in first.values()
        if pair.copy.roi_s
    ]
    print(f"\n{len(first)} benchmarks; geomean limited-copy/copy run time "
          f"{geomean(ratios):.3f} (paper: ~0.93)")
    print("warm sweep served 100% from cache, bit-identical to the cold run")


if __name__ == "__main__":
    main()
