"""Quickstart: simulate one benchmark on both systems and compare.

Run with::

    python examples/quickstart.py [--scale 0.03125] [--benchmark rodinia/kmeans]
"""

import argparse

from repro import (
    Component,
    SimOptions,
    discrete_gpu_system,
    heterogeneous_processor,
    remove_copies,
    simulate,
    workloads,
)
from repro.units import seconds_to_human


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="rodinia/kmeans")
    parser.add_argument(
        "--scale",
        type=float,
        default=1 / 32,
        help="footprint/cache scale (1.0 = paper scale; smaller is faster)",
    )
    args = parser.parse_args()

    spec = workloads.get(args.benchmark)
    print(f"Benchmark: {spec.full_name} — {spec.description}")

    # The copy version is what the benchmark suites ship: explicit
    # cudaMemcpy traffic between CPU and GPU memory spaces.
    pipeline = spec.pipeline()
    options = SimOptions(scale=args.scale)

    baseline = simulate(pipeline, discrete_gpu_system(), options)

    # The limited-copy port removes mirror allocations and the copies that
    # fill them; it runs on the cache-coherent heterogeneous processor.
    ported = simulate(remove_copies(pipeline), heterogeneous_processor(), options)

    for label, result in (("discrete GPU (copy)", baseline),
                          ("heterogeneous (limited-copy)", ported)):
        print(f"\n--- {label} ---")
        print(f"run time:          {seconds_to_human(result.roi_s)}")
        print(f"GPU utilization:   {result.utilization(Component.GPU):.0%}")
        print(f"CPU utilization:   {result.utilization(Component.CPU):.0%}")
        print(f"copy-engine time:  {seconds_to_human(result.busy_time(Component.COPY))}")
        print(f"off-chip accesses: {result.offchip_accesses():,}")
        by_comp = result.offchip_by_component()
        print(
            "  by component:    "
            + ", ".join(f"{c.value}={n:,}" for c, n in by_comp.items())
        )

    improvement = 1.0 - ported.roi_s / baseline.roi_s
    if improvement >= 0:
        print(f"\nRun-time improvement from porting: {improvement:.1%}")
    else:
        print(f"\nPorting slowed this benchmark down by {-improvement:.1%} "
              "(page-fault serialization; see Section IV)")


if __name__ == "__main__":
    main()
