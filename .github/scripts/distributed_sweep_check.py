#!/usr/bin/env python
"""CI acceptance check for the distributed executor backends.

Scenario (see docs/SWEEPS.md): the full 46x2 sweep fanned out through
``--backend subprocess`` — one worker child per task — with one task
killed permanently must still complete every other result, report exactly
one structured per-host ``WorkerCrash`` failure, and exit 3 (partial)
from the CLI.  A second, fault-free pass must be answered almost entirely
from the coordinator cache that the *workers* filled (warm-cache
synchronization), and spot-checked results must be byte-identical to the
local pool backend's.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.experiments.parallel import COPY, LIMITED, FaultPolicy
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.sim.serialize import results_identical
from repro.testing.faults import FaultRule, injected_faults
from repro.workloads.registry import get, simulatable_specs

SCALE = 1 / 64  # keeps the 46x2 sweep to a couple of minutes in CI
KILLED = "rodinia/kmeans:copy"
#: Benchmarks whose results are recomputed through the local pool and
#: compared byte-for-byte against the subprocess backend's.
IDENTITY_SPOT_CHECK = ("lonestar/bfs", "rodinia/srad")


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {status}: {label}")
    if not condition:
        sys.exit(1)


def main_check() -> None:
    specs = sorted(simulatable_specs(), key=lambda s: s.full_name)
    total = 2 * len(specs)
    cache_dir = Path(tempfile.mkdtemp(prefix="distributed-sweep-"))
    counter_dir = Path(tempfile.mkdtemp(prefix="distributed-faults-"))

    print(
        f"distributed sweep: {len(specs)} benchmarks x 2 via --backend "
        f"subprocess, one injected worker kill"
    )
    runner = SweepRunner(
        options=SimOptions(scale=SCALE, seed=0),
        parallel=4,
        cache_dir=cache_dir,
        fault_policy=FaultPolicy(max_retries=1, backoff_base_s=0.0),
        backend="subprocess",
    )
    with injected_faults(
        {KILLED: FaultRule("kill")}, counter_dir=counter_dir
    ):
        runner.sweep(specs)

    metrics = runner.last_metrics
    produced = sum(
        1
        for spec in specs
        for version in (COPY, LIMITED)
        if runner.try_result(spec, version) is not None
    )
    check(len(metrics.failures) == 1, "exactly 1 TaskFailure")
    failure = metrics.failures[0]
    check(
        f"{failure.benchmark}:{failure.version}" == KILLED,
        "the failure is the killed task",
    )
    check(failure.error_type == "WorkerCrash", "failure typed WorkerCrash")
    check(bool(failure.host), f"failure carries a host ({failure.host!r})")
    check(produced == total - 1, f"{produced}/{total} results produced")
    check(
        metrics.pool_rebuilds == 0,
        "isolated child crash needed no backend recycle",
    )
    check(
        len(runner.cache) == total - 1,
        "workers' cache entries absorbed by the coordinator cache",
    )

    # CLI: partial (3) under the fault, then a clean warm pass (0) that
    # barely simulates — the coordinator cache was filled by the workers.
    argv = [
        "run",
        "--scale",
        str(SCALE),
        "--jobs",
        "4",
        "--backend",
        "subprocess",
        "--cache-dir",
        str(cache_dir),
        "--max-retries",
        "0",
    ]
    with injected_faults({KILLED: FaultRule("kill")}, counter_dir=counter_dir):
        code = main(argv)
    check(code == 3, f"CLI exits 3 on partial distributed sweep (got {code})")

    warm = SweepRunner(
        options=SimOptions(scale=SCALE, seed=0),
        parallel=4,
        cache_dir=cache_dir,
        backend="subprocess",
    )
    warm.sweep(specs)
    warm_metrics = warm.last_metrics
    warm_fraction = warm_metrics.cache_hits / total
    check(
        not warm_metrics.failures, "fault-free second pass has no failures"
    )
    check(
        warm_fraction >= 0.9,
        f"second pass >=90% warm from synchronized cache "
        f"({warm_metrics.cache_hits}/{total})",
    )

    # Result identity: the distributed results must be byte-identical to
    # the local pool's for the spot-check benchmarks.
    local = SweepRunner(
        options=SimOptions(scale=SCALE, seed=0), parallel=4, backend="local"
    )
    for name in IDENTITY_SPOT_CHECK:
        spec = get(name)
        pair = local.pair(spec)
        for version, reference in ((COPY, pair.copy), (LIMITED, pair.limited)):
            distributed = warm.try_result(spec, version)
            check(
                distributed is not None
                and results_identical(distributed, reference),
                f"{name}:{version} identical across backends",
            )
    print("distributed_sweep_check: all assertions passed")


if __name__ == "__main__":
    main_check()
