#!/usr/bin/env python
"""CI acceptance check for fault-tolerant sweep execution.

Scenario (see docs/SWEEPS.md): with three permanently-faulted tasks, the
full copy/limited-copy sweep must still complete — returning every other
result, caching every fresh success, and reporting exactly three
structured failures — and the CLI must exit 3 (partial) under the faults
but 0 once they clear, replaying the healthy results from cache.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.cli import main
from repro.experiments.parallel import COPY, LIMITED, FaultPolicy
from repro.experiments.runner import SweepRunner
from repro.sim.engine import SimOptions
from repro.testing.faults import FaultRule, injected_faults
from repro.workloads.registry import simulatable_specs

SCALE = 1 / 64  # keeps the 46x2 sweep to a couple of minutes in CI
FAULTED = {
    "rodinia/kmeans:copy": FaultRule("raise"),
    "lonestar/bfs:limited-copy": FaultRule("raise"),
    "pannotia/mis:copy": FaultRule("raise"),
}


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  {status}: {label}")
    if not condition:
        sys.exit(1)


def main_check() -> None:
    specs = sorted(simulatable_specs(), key=lambda s: s.full_name)
    total = 2 * len(specs)
    cache_dir = Path(tempfile.mkdtemp(prefix="fault-sweep-"))

    print(f"faulted sweep: {len(specs)} benchmarks x 2, 3 permanent faults")
    runner = SweepRunner(
        options=SimOptions(scale=SCALE, seed=0),
        parallel=4,
        cache_dir=cache_dir,
        fault_policy=FaultPolicy(max_retries=1, backoff_base_s=0.0),
    )
    with injected_faults(FAULTED):
        runs = runner.sweep(specs)

    metrics = runner.last_metrics
    produced = sum(
        1
        for spec in specs
        for version in (COPY, LIMITED)
        if runner.try_result(spec, version) is not None
    )
    failed_pairs = {f"{f.benchmark}:{f.version}" for f in metrics.failures}
    check(len(metrics.failures) == 3, f"exactly 3 TaskFailures ({failed_pairs})")
    check(failed_pairs == set(FAULTED), "failures are exactly the faulted tasks")
    check(produced == total - 3, f"{produced}/{total} results produced")
    check(metrics.launched == total - 3, "every successful task simulated once")
    check(len(runner.cache) == total - 3, "every fresh success cached")
    check(len(runs) == len(specs) - 3, "incomplete pairs omitted from sweep()")
    check(
        all(f.attempts == 2 for f in metrics.failures),
        "each failure charged initial attempt + 1 retry",
    )

    # The CLI replays the 89 cached successes, re-attempts only the three
    # faulted tasks, and distinguishes partial (3) from clean (0).
    argv = [
        "run",
        "--scale",
        str(SCALE),
        "--jobs",
        "4",
        "--cache-dir",
        str(cache_dir),
        "--max-retries",
        "0",
    ]
    with injected_faults(FAULTED):
        code = main(argv)
    check(code == 3, f"CLI exits 3 on partial sweep (got {code})")
    code = main(argv)
    check(code == 0, f"CLI exits 0 once the faults clear (got {code})")
    check(len(runner.cache) == total, "recovered tasks landed in the cache")
    print("fault_sweep_check: all assertions passed")


if __name__ == "__main__":
    main_check()
